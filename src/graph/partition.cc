#include "src/graph/partition.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace seastar {
namespace {

// Picks cut points so each shard keys a contiguous vertex range with roughly
// E/num_shards in-edges. Balancing by in-edges (not vertices) is what keeps
// the per-shard interpreter runtime even under skewed degree distributions.
std::vector<int64_t> BalancedCuts(const Graph& graph, int num_shards) {
  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();
  std::vector<int64_t> in_degree(static_cast<size_t>(num_vertices), 0);
  for (int32_t dst : graph.edge_dst()) {
    ++in_degree[static_cast<size_t>(dst)];
  }
  std::vector<int64_t> cuts(static_cast<size_t>(num_shards) + 1, num_vertices);
  cuts[0] = 0;
  int64_t vertex = 0;
  int64_t cumulative = 0;
  for (int shard = 1; shard < num_shards; ++shard) {
    const int64_t target = num_edges * shard / num_shards;
    while (vertex < num_vertices && cumulative < target) {
      cumulative += in_degree[static_cast<size_t>(vertex)];
      ++vertex;
    }
    cuts[static_cast<size_t>(shard)] = vertex;
  }
  return cuts;
}

}  // namespace

int ShardedGraph::OwnerOf(int32_t vertex) const {
  SEASTAR_CHECK_GE(vertex, 0);
  SEASTAR_CHECK_LT(vertex, num_vertices);
  // cuts is non-decreasing with cuts[0] = 0: the owner is the last shard
  // whose range starts at or before `vertex`.
  auto it = std::upper_bound(cuts.begin(), cuts.end(), static_cast<int64_t>(vertex));
  return static_cast<int>(it - cuts.begin()) - 1;
}

int64_t ShardedGraph::TotalMirrors() const {
  int64_t total = 0;
  for (const GraphShard& shard : shards) {
    total += static_cast<int64_t>(shard.halo_globals.size());
  }
  return total;
}

std::string ShardedGraph::DebugString() const {
  std::ostringstream os;
  os << "ShardedGraph{shards=" << num_shards << " vertices=" << num_vertices
     << " edges=" << num_edges << " mirrors=" << TotalMirrors() << "\n";
  for (const GraphShard& shard : shards) {
    os << "  shard " << shard.shard_id << ": owned=[" << shard.owned_begin << ", "
       << shard.owned_end << ") edges=" << shard.local.num_edges()
       << " halo=" << shard.halo_globals.size() << " send_peers=" << shard.send_plans.size()
       << " recv_peers=" << shard.recv_plans.size() << "\n";
  }
  os << "}";
  return os.str();
}

ShardedGraph Partitioner::Partition(const Graph& graph, const PartitionOptions& options) {
  const int num_shards = options.num_shards;
  SEASTAR_CHECK_GE(num_shards, 1) << "Partitioner: need at least one shard";
  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();

  ShardedGraph sharded;
  sharded.num_shards = num_shards;
  sharded.num_vertices = num_vertices;
  sharded.num_edges = num_edges;
  sharded.num_edge_types = graph.num_edge_types();
  sharded.cuts = BalancedCuts(graph, num_shards);
  sharded.shards.resize(static_cast<size_t>(num_shards));

  const std::vector<int32_t>& src = graph.edge_src();
  const std::vector<int32_t>& dst = graph.edge_dst();
  const std::vector<int32_t>& types = graph.edge_type();
  const bool has_types = !types.empty();

  for (int s = 0; s < num_shards; ++s) {
    GraphShard& shard = sharded.shards[static_cast<size_t>(s)];
    shard.shard_id = s;
    shard.owned_begin = sharded.cuts[static_cast<size_t>(s)];
    shard.owned_end = sharded.cuts[static_cast<size_t>(s) + 1];
  }

  // Pass 1: count edges per shard and collect each shard's halo set — the
  // out-of-range sources of its edges. A self-loop's source equals its
  // (owned) destination, so it never enters the halo set; isolated vertices
  // appear in no edge at all and contribute nothing here.
  std::vector<int64_t> edges_per_shard(static_cast<size_t>(num_shards), 0);
  std::vector<std::vector<int32_t>> halo(static_cast<size_t>(num_shards));
  for (int64_t e = 0; e < num_edges; ++e) {
    const int s = sharded.OwnerOf(dst[static_cast<size_t>(e)]);
    ++edges_per_shard[static_cast<size_t>(s)];
    const int32_t u = src[static_cast<size_t>(e)];
    const GraphShard& shard = sharded.shards[static_cast<size_t>(s)];
    if (u < shard.owned_begin || u >= shard.owned_end) {
      halo[static_cast<size_t>(s)].push_back(u);
    }
  }
  for (int s = 0; s < num_shards; ++s) {
    std::vector<int32_t>& h = halo[static_cast<size_t>(s)];
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
    sharded.shards[static_cast<size_t>(s)].halo_globals = std::move(h);
  }

  // Pass 2: build each shard's local COO in ascending global edge id order.
  struct LocalCoo {
    std::vector<int32_t> src, dst, types;
  };
  std::vector<LocalCoo> coo(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const size_t count = static_cast<size_t>(edges_per_shard[static_cast<size_t>(s)]);
    coo[static_cast<size_t>(s)].src.reserve(count);
    coo[static_cast<size_t>(s)].dst.reserve(count);
    sharded.shards[static_cast<size_t>(s)].edge_global.reserve(count);
    if (has_types) {
      coo[static_cast<size_t>(s)].types.reserve(count);
    }
  }
  for (int64_t e = 0; e < num_edges; ++e) {
    const int32_t v = dst[static_cast<size_t>(e)];
    const int s = sharded.OwnerOf(v);
    GraphShard& shard = sharded.shards[static_cast<size_t>(s)];
    const int32_t u = src[static_cast<size_t>(e)];
    int32_t local_src;
    if (u >= shard.owned_begin && u < shard.owned_end) {
      local_src = static_cast<int32_t>(u - shard.owned_begin);
    } else {
      const auto it =
          std::lower_bound(shard.halo_globals.begin(), shard.halo_globals.end(), u);
      SEASTAR_CHECK(it != shard.halo_globals.end() && *it == u);
      local_src = static_cast<int32_t>(shard.owned_count() +
                                       (it - shard.halo_globals.begin()));
    }
    LocalCoo& c = coo[static_cast<size_t>(s)];
    c.src.push_back(local_src);
    c.dst.push_back(static_cast<int32_t>(v - shard.owned_begin));
    if (has_types) {
      c.types.push_back(types[static_cast<size_t>(e)]);
    }
    shard.edge_global.push_back(static_cast<int32_t>(e));
  }

  GraphOptions local_options;
  local_options.sort_by_degree = graph.sorted_by_degree();
  for (int s = 0; s < num_shards; ++s) {
    GraphShard& shard = sharded.shards[static_cast<size_t>(s)];
    LocalCoo& c = coo[static_cast<size_t>(s)];
    shard.local = Graph::FromCoo(shard.local_count(), std::move(c.src), std::move(c.dst),
                                 std::move(c.types), graph.num_edge_types(), local_options);
  }

  // Exchange plans: a shard's (sorted) halo globals group contiguously by
  // owner, which yields the aligned owner/mirror segment pair directly. Only
  // non-empty groups produce segments, so a shard pair with no shared
  // boundary emits nothing — the "no zero-length halo segments" invariant
  // the runtime's packers rely on.
  for (int s = 0; s < num_shards; ++s) {
    GraphShard& mirror = sharded.shards[static_cast<size_t>(s)];
    size_t i = 0;
    while (i < mirror.halo_globals.size()) {
      const int owner = sharded.OwnerOf(mirror.halo_globals[i]);
      SEASTAR_CHECK_NE(owner, s) << "Partitioner: owned vertex in halo set";
      GraphShard& master = sharded.shards[static_cast<size_t>(owner)];
      HaloSegment recv;
      recv.peer = owner;
      HaloSegment send;
      send.peer = s;
      while (i < mirror.halo_globals.size() &&
             sharded.OwnerOf(mirror.halo_globals[i]) == owner) {
        const int32_t g = mirror.halo_globals[i];
        recv.local_rows.push_back(
            static_cast<int32_t>(mirror.owned_count() + static_cast<int64_t>(i)));
        send.local_rows.push_back(static_cast<int32_t>(g - master.owned_begin));
        ++i;
      }
      SEASTAR_CHECK(!recv.local_rows.empty());
      SEASTAR_CHECK_EQ(recv.local_rows.size(), send.local_rows.size());
      mirror.recv_plans.push_back(std::move(recv));
      master.send_plans.push_back(std::move(send));
    }
  }

  return sharded;
}

}  // namespace seastar
