// Owner/mirror graph partitioning for the sharded execution runtime
// (ROADMAP item 1; the partition-parallel direction of GraphTensor and the
// LA3-style owner/mirror vertex model).
//
// The partitioner cuts the vertex id space into `num_shards` contiguous
// ranges, balanced by in-edge count (a shard's work in the vertex-parallel
// interpreter is proportional to the in-edges of the vertices it keys).
// Every edge is assigned to the shard that *owns its destination*, so each
// shard holds all in-edges of its owned vertices and the forward A:D
// aggregations are exact shard-locally. Source endpoints owned elsewhere
// become *mirrors* (halo vertices): their feature rows are exchanged in
// before a run, and the partial A:S (out-edge) sums they accumulate during
// backward are exchanged back to their owner — partial aggregation on
// mirrors, combine on masters.
//
// A shard's local id space is compact:
//   [0, owned_count)              — owned vertices, local = global - begin;
//   [owned_count, local_count)    — halo vertices, sorted by ascending
//                                   global id (determinism: every shard and
//                                   every run derives identical halo order).
// Local edges keep their relative global order; `edge_global` maps a local
// edge id back to the global edge id that global [E, w] feature tensors and
// edge outputs are indexed by.
//
// Exchange plans are precomputed per (owner, mirrorer) pair and shared by
// both directions of the protocol:
//   shards[t].send_plans entry for peer s — owned local ids in t whose
//     globals s mirrors (rows t gathers when feeding s's halo, and the rows
//     t adds into when s returns partial sums);
//   shards[s].recv_plans entry for peer t — s's halo local ids for the same
//     globals, in the same order.
// Plans exist only for non-empty segments: no zero-length halo segment is
// ever emitted (empty shards, isolated vertices and self-loops simply
// produce no plan).
#ifndef SRC_GRAPH_PARTITION_H_
#define SRC_GRAPH_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace seastar {

struct PartitionOptions {
  int num_shards = 1;
};

// One aligned (owner, mirrorer) exchange segment. The owner-side and
// mirrorer-side copies list the same vertices in the same (ascending global
// id) order, in their respective local id spaces.
struct HaloSegment {
  int peer = -1;                     // The shard on the other side.
  std::vector<int32_t> local_rows;   // Local vertex ids on *this* side.
};

struct GraphShard {
  int shard_id = 0;
  int64_t owned_begin = 0;  // Global vertex range [owned_begin, owned_end).
  int64_t owned_end = 0;
  // Halo vertices' global ids, ascending; halo local id = owned + index.
  std::vector<int32_t> halo_globals;
  // The shard-local graph over owned + halo vertices: all global edges whose
  // destination is owned here, with both CSRs, degree sorting and edge-type
  // slots inherited from the parent graph.
  Graph local;
  // Local edge id -> global edge id (ascending; local order preserves
  // global edge order).
  std::vector<int32_t> edge_global;
  // Owner side: rows this shard gathers/combines per mirroring peer.
  std::vector<HaloSegment> send_plans;
  // Mirror side: halo rows this shard fills/returns per owning peer.
  std::vector<HaloSegment> recv_plans;

  int64_t owned_count() const { return owned_end - owned_begin; }
  int64_t local_count() const {
    return owned_count() + static_cast<int64_t>(halo_globals.size());
  }
};

struct ShardedGraph {
  int num_shards = 1;
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int32_t num_edge_types = 1;
  std::vector<GraphShard> shards;
  // cuts[s] = first global vertex of shard s; cuts[num_shards] = N.
  std::vector<int64_t> cuts;

  int OwnerOf(int32_t vertex) const;
  // Total mirrored vertices across shards (each mirror counted once per
  // shard that holds it) — the replication cost of the partition.
  int64_t TotalMirrors() const;
  std::string DebugString() const;
};

class Partitioner {
 public:
  // Partitions `graph` into vertex-range shards. Handles every degenerate
  // shape: empty graphs, empty shards (num_shards > num_vertices), isolated
  // vertices (owned, zero local edges) and self-loops (always shard-local,
  // never mirrored). Dies on num_shards < 1.
  static ShardedGraph Partition(const Graph& graph, const PartitionOptions& options);
};

}  // namespace seastar

#endif  // SRC_GRAPH_PARTITION_H_
