#include "src/graph/graph.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace seastar {

Graph Graph::FromCoo(int64_t num_vertices, std::vector<int32_t> src, std::vector<int32_t> dst,
                     std::vector<int32_t> edge_types, int32_t num_edge_types,
                     const GraphOptions& options) {
  SEASTAR_CHECK_EQ(src.size(), dst.size());
  SEASTAR_CHECK_GE(num_edge_types, 1);
  if (!edge_types.empty()) {
    SEASTAR_CHECK_EQ(edge_types.size(), src.size());
    for (int32_t t : edge_types) {
      SEASTAR_CHECK_GE(t, 0);
      SEASTAR_CHECK_LT(t, num_edge_types);
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = static_cast<int64_t>(src.size());
  g.num_edge_types_ = num_edge_types;
  g.sorted_by_degree_ = options.sort_by_degree;
  g.edge_src_ = std::move(src);
  g.edge_dst_ = std::move(dst);
  g.edge_type_ = std::move(edge_types);

  CsrBuildOptions csr_options;
  csr_options.sort_by_degree = options.sort_by_degree;
  csr_options.sort_slots_by_edge_type = g.num_edge_types_ > 1;
  g.in_csr_ = BuildCsr(num_vertices, g.edge_dst_, g.edge_src_, g.edge_type_, csr_options);
  g.out_csr_ = BuildCsr(num_vertices, g.edge_src_, g.edge_dst_, g.edge_type_, csr_options);
  return g;
}

int64_t Graph::MaxInDegree() const {
  // With degree sorting, position 0 holds the max-degree vertex; otherwise scan.
  if (num_vertices_ == 0) {
    return 0;
  }
  if (sorted_by_degree_) {
    return in_csr_.DegreeAtPosition(0);
  }
  int64_t best = 0;
  for (int64_t k = 0; k < num_vertices_; ++k) {
    best = std::max(best, in_csr_.DegreeAtPosition(k));
  }
  return best;
}

const Tensor& Graph::InDegreeTensor() const {
  DegreeCache& cache = *degree_cache_;
  std::lock_guard<std::mutex> lock(cache.mutex);
  if (!cache.in_degree.defined()) {
    Tensor t({num_vertices_, 1});
    for (int64_t v = 0; v < num_vertices_; ++v) {
      t.at(v, 0) = static_cast<float>(InDegree(static_cast<int32_t>(v)));
    }
    cache.in_degree = std::move(t);
  }
  return cache.in_degree;
}

const Tensor& Graph::OutDegreeTensor() const {
  DegreeCache& cache = *degree_cache_;
  std::lock_guard<std::mutex> lock(cache.mutex);
  if (!cache.out_degree.defined()) {
    Tensor t({num_vertices_, 1});
    for (int64_t v = 0; v < num_vertices_; ++v) {
      t.at(v, 0) = static_cast<float>(OutDegree(static_cast<int32_t>(v)));
    }
    cache.out_degree = std::move(t);
  }
  return cache.out_degree;
}

double Graph::AverageInDegree() const {
  return num_vertices_ > 0 ? static_cast<double>(num_edges_) / static_cast<double>(num_vertices_)
                           : 0.0;
}

uint64_t Graph::IndexBytes() const {
  uint64_t bytes = 0;
  auto csr_bytes = [](const Csr& csr) {
    return csr.offsets.size() * sizeof(int64_t) +
           (csr.position_vertex.size() + csr.vertex_position.size() + csr.nbr_ids.size() +
            csr.edge_ids.size() + csr.edge_types.size()) *
               sizeof(int32_t);
  };
  bytes += csr_bytes(in_csr_) + csr_bytes(out_csr_);
  bytes += (edge_src_.size() + edge_dst_.size() + edge_type_.size()) * sizeof(int32_t);
  return bytes;
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph(|V|=" << num_vertices_ << ", |E|=" << num_edges_
     << ", types=" << num_edge_types_ << ", avg_in_deg=" << AverageInDegree()
     << ", max_in_deg=" << MaxInDegree() << ")";
  return os.str();
}

}  // namespace seastar
