#include "src/graph/generators.h"

#include <cmath>

#include "src/common/logging.h"

namespace seastar {

CooEdges ErdosRenyi(int64_t num_vertices, int64_t num_edges, Rng& rng) {
  SEASTAR_CHECK_GT(num_vertices, 0);
  CooEdges edges;
  edges.num_vertices = num_vertices;
  edges.src.reserve(static_cast<size_t>(num_edges));
  edges.dst.reserve(static_cast<size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    edges.src.push_back(static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
    edges.dst.push_back(static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
  }
  return edges;
}

CooEdges LocalizedRandom(int64_t num_vertices, int64_t num_edges, int64_t span, Rng& rng) {
  SEASTAR_CHECK_GT(num_vertices, 0);
  SEASTAR_CHECK_GT(span, 0);
  CooEdges edges;
  edges.num_vertices = num_vertices;
  edges.src.reserve(static_cast<size_t>(num_edges));
  edges.dst.reserve(static_cast<size_t>(num_edges));
  const uint64_t window = static_cast<uint64_t>(2 * span + 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const int64_t src = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    // dst in [src - span, src + span], wrapped into [0, n).
    int64_t dst = src - span + static_cast<int64_t>(rng.NextBounded(window));
    dst %= num_vertices;
    if (dst < 0) {
      dst += num_vertices;
    }
    edges.src.push_back(static_cast<int32_t>(src));
    edges.dst.push_back(static_cast<int32_t>(dst));
  }
  return edges;
}

CooEdges Rmat(int64_t num_vertices, int64_t num_edges, Rng& rng, const RmatParams& params) {
  SEASTAR_CHECK_GT(num_vertices, 0);
  const double total = params.a + params.b + params.c + params.d;
  SEASTAR_CHECK_GT(total, 0.0);

  int levels = 0;
  while ((int64_t{1} << levels) < num_vertices) {
    ++levels;
  }

  CooEdges edges;
  edges.num_vertices = num_vertices;
  edges.src.reserve(static_cast<size_t>(num_edges));
  edges.dst.reserve(static_cast<size_t>(num_edges));

  const double pa = params.a / total;
  const double pb = params.b / total;
  const double pc = params.c / total;
  while (static_cast<int64_t>(edges.src.size()) < num_edges) {
    int64_t row = 0;
    int64_t col = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < pa) {
        // Top-left quadrant: neither bit set.
      } else if (r < pa + pb) {
        col |= 1;
      } else if (r < pa + pb + pc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row >= num_vertices || col >= num_vertices) {
      continue;  // Reject samples outside the vertex range.
    }
    edges.src.push_back(static_cast<int32_t>(row));
    edges.dst.push_back(static_cast<int32_t>(col));
  }
  return edges;
}

CooEdges Star(int64_t num_vertices) {
  SEASTAR_CHECK_GE(num_vertices, 1);
  CooEdges edges;
  edges.num_vertices = num_vertices;
  for (int64_t v = 1; v < num_vertices; ++v) {
    edges.src.push_back(static_cast<int32_t>(v));
    edges.dst.push_back(0);
  }
  return edges;
}

CooEdges Chain(int64_t num_vertices) {
  SEASTAR_CHECK_GE(num_vertices, 1);
  CooEdges edges;
  edges.num_vertices = num_vertices;
  for (int64_t v = 0; v + 1 < num_vertices; ++v) {
    edges.src.push_back(static_cast<int32_t>(v));
    edges.dst.push_back(static_cast<int32_t>(v + 1));
  }
  return edges;
}

CooEdges Cycle(int64_t num_vertices) {
  CooEdges edges = Chain(num_vertices);
  if (num_vertices > 1) {
    edges.src.push_back(static_cast<int32_t>(num_vertices - 1));
    edges.dst.push_back(0);
  }
  return edges;
}

CooEdges Complete(int64_t num_vertices) {
  SEASTAR_CHECK_GE(num_vertices, 1);
  CooEdges edges;
  edges.num_vertices = num_vertices;
  for (int64_t i = 0; i < num_vertices; ++i) {
    for (int64_t j = 0; j < num_vertices; ++j) {
      if (i == j) {
        continue;
      }
      edges.src.push_back(static_cast<int32_t>(i));
      edges.dst.push_back(static_cast<int32_t>(j));
    }
  }
  return edges;
}

SbmResult StochasticBlockModel(int64_t num_vertices, int32_t communities, double p_in,
                               double p_out, Rng& rng) {
  SEASTAR_CHECK_GE(communities, 1);
  SbmResult result;
  result.edges.num_vertices = num_vertices;
  // Balanced but shuffled assignment: deterministic periodic labels would
  // correlate with any stride-based train/test split.
  result.labels.resize(static_cast<size_t>(num_vertices));
  for (int64_t v = 0; v < num_vertices; ++v) {
    result.labels[static_cast<size_t>(v)] = static_cast<int32_t>(v % communities);
  }
  rng.Shuffle(result.labels);
  for (int64_t u = 0; u < num_vertices; ++u) {
    for (int64_t v = 0; v < num_vertices; ++v) {
      if (u == v) {
        continue;
      }
      const bool same =
          result.labels[static_cast<size_t>(u)] == result.labels[static_cast<size_t>(v)];
      if (rng.NextBernoulli(same ? p_in : p_out)) {
        result.edges.src.push_back(static_cast<int32_t>(u));
        result.edges.dst.push_back(static_cast<int32_t>(v));
      }
    }
  }
  return result;
}

void AddSelfLoops(CooEdges& edges) {
  for (int64_t v = 0; v < edges.num_vertices; ++v) {
    edges.src.push_back(static_cast<int32_t>(v));
    edges.dst.push_back(static_cast<int32_t>(v));
  }
}

std::vector<int32_t> RandomEdgeTypes(int64_t num_edges, int32_t num_types, Rng& rng) {
  SEASTAR_CHECK_GE(num_types, 1);
  // Zipf-ish weights: w_t = 1 / (t + 1).
  std::vector<double> weights(static_cast<size_t>(num_types));
  for (int32_t t = 0; t < num_types; ++t) {
    weights[static_cast<size_t>(t)] = 1.0 / static_cast<double>(t + 1);
  }
  std::vector<int32_t> types(static_cast<size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    types[static_cast<size_t>(e)] = static_cast<int32_t>(rng.NextWeighted(weights));
  }
  return types;
}

Graph ToGraph(CooEdges edges, std::vector<int32_t> edge_types, int32_t num_edge_types,
              const GraphOptions& options) {
  return Graph::FromCoo(edges.num_vertices, std::move(edges.src), std::move(edges.dst),
                        std::move(edge_types), num_edge_types, options);
}

}  // namespace seastar
