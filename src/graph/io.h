// Graph input/output: bring-your-own-data support.
//
// Three interchange formats:
//  * TSV edge lists ("src<TAB>dst[<TAB>type]" with '#' comments) — the
//    lowest common denominator for graph datasets;
//  * MatrixMarket coordinate files (.mtx), the format most public sparse
//    graph collections (SuiteSparse, SNAP mirrors) ship in;
//  * a compact binary container for round-tripping Graphs losslessly.
//
// Loaders return StatusOr<Graph> — never abort: file contents are external,
// untrusted data. Errors name the file and the line (text formats) or byte
// offset (binary) where parsing failed, so a recovery log pinpoints the
// corruption. StatusOr is optional-compatible (has_value / operator*), so
// call sites written against the earlier std::optional API still compile.
// All loaders honour FaultSite::kGraphRead for deterministic I/O-error
// injection in resilience tests.
#ifndef SRC_GRAPH_IO_H_
#define SRC_GRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace seastar {

// ---- TSV edge lists ------------------------------------------------------------------------------

// Writes "src\tdst[\ttype]" lines. Returns false on I/O failure.
bool SaveEdgeListTsv(const Graph& graph, const std::string& path);

// Reads an edge list. Vertex ids must be non-negative; the vertex count is
// max id + 1 unless `num_vertices_hint` is larger. Lines starting with '#'
// or empty lines are skipped. Type column is optional (all lines must agree
// on having it or not).
StatusOr<Graph> LoadEdgeListTsv(const std::string& path, int64_t num_vertices_hint = 0,
                                const GraphOptions& options = {});

// ---- MatrixMarket --------------------------------------------------------------------------------

// Supports "%%MatrixMarket matrix coordinate (pattern|real|integer)
// (general|symmetric)". 1-based indices per the spec; symmetric matrices
// emit both edge directions. Values of real/integer matrices are ignored
// (the adjacency structure is what GNN training consumes).
StatusOr<Graph> LoadMatrixMarket(const std::string& path, const GraphOptions& options = {});

// ---- Binary container ----------------------------------------------------------------------------

// Lossless round-trip of the COO view (vertex count, edges, types); the
// CSRs are rebuilt on load. Layout: magic "SSG1", then little-endian counts
// and arrays.
bool SaveGraphBinary(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadGraphBinary(const std::string& path, const GraphOptions& options = {});

}  // namespace seastar

#endif  // SRC_GRAPH_IO_H_
