// Graph input/output: bring-your-own-data support.
//
// Three interchange formats:
//  * TSV edge lists ("src<TAB>dst[<TAB>type]" with '#' comments) — the
//    lowest common denominator for graph datasets;
//  * MatrixMarket coordinate files (.mtx), the format most public sparse
//    graph collections (SuiteSparse, SNAP mirrors) ship in;
//  * a compact binary container for round-tripping Graphs losslessly.
//
// Loaders return std::nullopt on malformed input (with a logged reason)
// rather than aborting: file contents are external, untrusted data.
#ifndef SRC_GRAPH_IO_H_
#define SRC_GRAPH_IO_H_

#include <optional>
#include <string>

#include "src/graph/graph.h"

namespace seastar {

// ---- TSV edge lists ------------------------------------------------------------------------------

// Writes "src\tdst[\ttype]" lines. Returns false on I/O failure.
bool SaveEdgeListTsv(const Graph& graph, const std::string& path);

// Reads an edge list. Vertex ids must be non-negative; the vertex count is
// max id + 1 unless `num_vertices_hint` is larger. Lines starting with '#'
// or empty lines are skipped. Type column is optional (all lines must agree
// on having it or not).
std::optional<Graph> LoadEdgeListTsv(const std::string& path, int64_t num_vertices_hint = 0,
                                     const GraphOptions& options = {});

// ---- MatrixMarket --------------------------------------------------------------------------------

// Supports "%%MatrixMarket matrix coordinate (pattern|real|integer)
// (general|symmetric)". 1-based indices per the spec; symmetric matrices
// emit both edge directions. Values of real/integer matrices are ignored
// (the adjacency structure is what GNN training consumes).
std::optional<Graph> LoadMatrixMarket(const std::string& path, const GraphOptions& options = {});

// ---- Binary container ----------------------------------------------------------------------------

// Lossless round-trip of the COO view (vertex count, edges, types); the
// CSRs are rebuilt on load. Layout: magic "SSG1", then little-endian counts
// and arrays.
bool SaveGraphBinary(const Graph& graph, const std::string& path);
std::optional<Graph> LoadGraphBinary(const std::string& path, const GraphOptions& options = {});

}  // namespace seastar

#endif  // SRC_GRAPH_IO_H_
