// Compressed Sparse Row adjacency with the exact layout of the paper's §6.1
// (Fig. 7):
//
//  * a vertex offset array indexed by *position*, where positions are the
//    vertices sorted by descending degree (degree sorting, §6.3.3) — or by
//    original id when sorting is disabled (the FA+Unsorted ablation);
//  * a neighbor-id array holding the opposite endpoint of each edge slot;
//  * a separate edge-id array of the same length, because after flipping the
//    CSR for the backward pass the slot index no longer identifies the
//    original edge (§6.3.4 — "we need to remember the edge ids ... and
//    sort/flip them together with the vertex index array");
//  * an optional edge-type array (indexed by slot) for heterogeneous graphs,
//    with edge type as a secondary sort key within each vertex's slot range
//    so the fused hetero kernel can detect type boundaries (§6.3.5).
#ifndef SRC_GRAPH_CSR_H_
#define SRC_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

namespace seastar {

struct Csr {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;

  // offsets[k] .. offsets[k+1] delimit the edge slots of the vertex at
  // position k. Size: num_vertices + 1.
  std::vector<int64_t> offsets;
  // position_vertex[k] = original id of the vertex at position k. When the
  // CSR is unsorted this is the identity permutation. Size: num_vertices.
  std::vector<int32_t> position_vertex;
  // vertex_position[v] = position of original vertex v. Size: num_vertices.
  std::vector<int32_t> vertex_position;
  // Opposite-endpoint vertex id per slot. Size: num_edges.
  std::vector<int32_t> nbr_ids;
  // Original edge id per slot. Size: num_edges.
  std::vector<int32_t> edge_ids;
  // Edge type per slot; empty for homogeneous graphs. Size: num_edges.
  std::vector<int32_t> edge_types;

  int64_t DegreeAtPosition(int64_t position) const {
    return offsets[position + 1] - offsets[position];
  }
  int64_t DegreeOfVertex(int32_t vertex) const {
    return DegreeAtPosition(vertex_position[vertex]);
  }
};

struct CsrBuildOptions {
  // Sort positions by descending degree (paper default). Disabled for the
  // FA+Unsorted micro-benchmark variant.
  bool sort_by_degree = true;
  // Sort each vertex's slots by edge type (required for hetero kernels).
  bool sort_slots_by_edge_type = false;
};

// Builds the CSR that groups edges by `key_endpoint` (the aggregation side)
// and stores `value_endpoint` in nbr_ids. For the forward in-CSR:
// key = dst, value = src. For the reverse (backward) CSR: key = src,
// value = dst, with the same original edge ids.
Csr BuildCsr(int64_t num_vertices, const std::vector<int32_t>& key_endpoint,
             const std::vector<int32_t>& value_endpoint, const std::vector<int32_t>& edge_types,
             const CsrBuildOptions& options);

}  // namespace seastar

#endif  // SRC_GRAPH_CSR_H_
