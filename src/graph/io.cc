#include "src/graph/io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace seastar {
namespace {

constexpr char kBinaryMagic[4] = {'S', 'S', 'G', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& values) {
  const uint64_t count = values.size();
  WritePod(out, count);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* values, uint64_t sanity_limit) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count > sanity_limit) {
    return false;
  }
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good() || (in.eof() && count == 0);
}

// Last consumed stream position, for error messages on truncated binaries;
// -1 (EOF / failed stream) maps to "end of file".
std::string OffsetString(std::ifstream& in) {
  in.clear();
  const std::streampos pos = in.tellg();
  if (pos < 0) {
    return "end of file";
  }
  return "byte offset " + std::to_string(static_cast<int64_t>(pos));
}

// Deterministic I/O-error injection shared by all three loaders.
bool InjectedReadFault() {
  FaultInjector& faults = FaultInjector::Get();
  return faults.enabled() && faults.ShouldFail(FaultSite::kGraphRead);
}

}  // namespace

bool SaveEdgeListTsv(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SEASTAR_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << "# seastar edge list: " << graph.num_vertices() << " vertices, " << graph.num_edges()
      << " edges\n";
  const bool typed = graph.is_heterogeneous();
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge_src()[static_cast<size_t>(e)] << '\t'
        << graph.edge_dst()[static_cast<size_t>(e)];
    if (typed) {
      out << '\t' << graph.edge_type()[static_cast<size_t>(e)];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

StatusOr<Graph> LoadEdgeListTsv(const std::string& path, int64_t num_vertices_hint,
                                const GraphOptions& options) {
  if (InjectedReadFault()) {
    return ErrorStatus(StatusCode::kUnavailable) << path << ": injected I/O fault";
  }
  std::ifstream in(path);
  if (!in) {
    return ErrorStatus(StatusCode::kNotFound) << path << ": cannot open for reading";
  }
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<int32_t> types;
  int64_t max_id = -1;
  int column_count = 0;  // 0 = undecided.
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    int64_t s = -1;
    int64_t d = -1;
    int64_t t = -1;
    fields >> s >> d;
    if (fields.fail() || s < 0 || d < 0) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << path << ":" << line_number << ": malformed edge line '" << line << "'";
    }
    const bool has_type = static_cast<bool>(fields >> t);
    const int columns = has_type ? 3 : 2;
    if (column_count == 0) {
      column_count = columns;
    } else if (column_count != columns) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << path << ":" << line_number << ": inconsistent column count (expected "
             << column_count << ", got " << columns << ")";
    }
    src.push_back(static_cast<int32_t>(s));
    dst.push_back(static_cast<int32_t>(d));
    if (has_type) {
      if (t < 0) {
        return ErrorStatus(StatusCode::kInvalidArgument)
               << path << ":" << line_number << ": negative edge type " << t;
      }
      types.push_back(static_cast<int32_t>(t));
    }
    max_id = std::max({max_id, s, d});
  }
  const int64_t num_vertices = std::max(num_vertices_hint, max_id + 1);
  int32_t num_types = 1;
  if (!types.empty()) {
    num_types = 1 + *std::max_element(types.begin(), types.end());
  }
  return Graph::FromCoo(num_vertices, std::move(src), std::move(dst), std::move(types),
                        num_types, options);
}

StatusOr<Graph> LoadMatrixMarket(const std::string& path, const GraphOptions& options) {
  if (InjectedReadFault()) {
    return ErrorStatus(StatusCode::kUnavailable) << path << ": injected I/O fault";
  }
  std::ifstream in(path);
  if (!in) {
    return ErrorStatus(StatusCode::kNotFound) << path << ": cannot open for reading";
  }
  std::string header;
  if (!std::getline(in, header) || !StartsWith(header, "%%MatrixMarket")) {
    return ErrorStatus(StatusCode::kInvalidArgument) << path << ":1: missing MatrixMarket banner";
  }
  std::istringstream banner(header);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << path << ":1: only coordinate matrices are supported";
  }
  const bool has_values = field == "real" || field == "integer";
  if (!has_values && field != "pattern") {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << path << ":1: unsupported field '" << field << "'";
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << path << ":1: unsupported symmetry '" << symmetry << "'";
  }

  std::string line;
  int64_t line_number = 1;
  // Skip comments.
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream size_line(line);
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t entries = 0;
  size_line >> rows >> cols >> entries;
  if (size_line.fail() || rows <= 0 || cols <= 0 || entries < 0) {
    return ErrorStatus(StatusCode::kInvalidArgument)
           << path << ":" << line_number << ": malformed size line '" << line << "'";
  }

  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  src.reserve(static_cast<size_t>(entries));
  dst.reserve(static_cast<size_t>(entries));
  for (int64_t i = 0; i < entries; ++i) {
    int64_t r = 0;
    int64_t c = 0;
    double value = 0.0;
    if (!(in >> r >> c)) {
      return ErrorStatus(StatusCode::kDataLoss)
             << path << ": truncated entry list: entry " << i << " of " << entries << " missing";
    }
    if (has_values && !(in >> value)) {
      return ErrorStatus(StatusCode::kDataLoss)
             << path << ": entry " << i << " of " << entries << " missing its value";
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << path << ": entry " << i << " (" << r << ", " << c << ") out of bounds for "
             << rows << "x" << cols;
    }
    src.push_back(static_cast<int32_t>(r - 1));
    dst.push_back(static_cast<int32_t>(c - 1));
    if (symmetric && r != c) {
      src.push_back(static_cast<int32_t>(c - 1));
      dst.push_back(static_cast<int32_t>(r - 1));
    }
  }
  return Graph::FromCoo(std::max(rows, cols), std::move(src), std::move(dst), {}, 1, options);
}

bool SaveGraphBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SEASTAR_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  WritePod(out, static_cast<int64_t>(graph.num_vertices()));
  WritePod(out, static_cast<int32_t>(graph.num_edge_types()));
  WriteVector(out, graph.edge_src());
  WriteVector(out, graph.edge_dst());
  WriteVector(out, graph.edge_type());
  return static_cast<bool>(out);
}

StatusOr<Graph> LoadGraphBinary(const std::string& path, const GraphOptions& options) {
  if (InjectedReadFault()) {
    return ErrorStatus(StatusCode::kUnavailable) << path << ": injected I/O fault";
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ErrorStatus(StatusCode::kNotFound) << path << ": cannot open for reading";
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": bad magic at byte offset 0 (not a seastar binary graph)";
  }
  int64_t num_vertices = 0;
  int32_t num_types = 0;
  if (!ReadPod(in, &num_vertices) || !ReadPod(in, &num_types) || num_vertices < 0 ||
      num_types < 1) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": bad header at " << OffsetString(in);
  }
  constexpr uint64_t kSanityLimit = uint64_t{1} << 33;  // 8G entries.
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<int32_t> types;
  if (!ReadVector(in, &src, kSanityLimit) || !ReadVector(in, &dst, kSanityLimit) ||
      !ReadVector(in, &types, kSanityLimit) || src.size() != dst.size() ||
      (!types.empty() && types.size() != src.size())) {
    return ErrorStatus(StatusCode::kDataLoss)
           << path << ": corrupt or truncated edge arrays at " << OffsetString(in);
  }
  for (int32_t v : src) {
    if (v < 0 || v >= num_vertices) {
      return ErrorStatus(StatusCode::kDataLoss)
             << path << ": edge source " << v << " out of range [0, " << num_vertices << ")";
    }
  }
  for (int32_t v : dst) {
    if (v < 0 || v >= num_vertices) {
      return ErrorStatus(StatusCode::kDataLoss)
             << path << ": edge destination " << v << " out of range [0, " << num_vertices << ")";
    }
  }
  for (int32_t t : types) {
    if (t < 0 || t >= num_types) {
      return ErrorStatus(StatusCode::kDataLoss)
             << path << ": edge type " << t << " out of range [0, " << num_types << ")";
    }
  }
  return Graph::FromCoo(num_vertices, std::move(src), std::move(dst), std::move(types),
                        num_types, options);
}

}  // namespace seastar
