#include "src/graph/io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace seastar {
namespace {

constexpr char kBinaryMagic[4] = {'S', 'S', 'G', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& values) {
  const uint64_t count = values.size();
  WritePod(out, count);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* values, uint64_t sanity_limit) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count > sanity_limit) {
    return false;
  }
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good() || (in.eof() && count == 0);
}

}  // namespace

bool SaveEdgeListTsv(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SEASTAR_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << "# seastar edge list: " << graph.num_vertices() << " vertices, " << graph.num_edges()
      << " edges\n";
  const bool typed = graph.is_heterogeneous();
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge_src()[static_cast<size_t>(e)] << '\t'
        << graph.edge_dst()[static_cast<size_t>(e)];
    if (typed) {
      out << '\t' << graph.edge_type()[static_cast<size_t>(e)];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<Graph> LoadEdgeListTsv(const std::string& path, int64_t num_vertices_hint,
                                     const GraphOptions& options) {
  std::ifstream in(path);
  if (!in) {
    SEASTAR_LOG(Error) << "cannot open " << path;
    return std::nullopt;
  }
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<int32_t> types;
  int64_t max_id = -1;
  int column_count = 0;  // 0 = undecided.
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    int64_t s = -1;
    int64_t d = -1;
    int64_t t = -1;
    fields >> s >> d;
    if (fields.fail() || s < 0 || d < 0) {
      SEASTAR_LOG(Error) << path << ":" << line_number << ": malformed edge line";
      return std::nullopt;
    }
    const bool has_type = static_cast<bool>(fields >> t);
    const int columns = has_type ? 3 : 2;
    if (column_count == 0) {
      column_count = columns;
    } else if (column_count != columns) {
      SEASTAR_LOG(Error) << path << ":" << line_number << ": inconsistent column count";
      return std::nullopt;
    }
    src.push_back(static_cast<int32_t>(s));
    dst.push_back(static_cast<int32_t>(d));
    if (has_type) {
      if (t < 0) {
        SEASTAR_LOG(Error) << path << ":" << line_number << ": negative edge type";
        return std::nullopt;
      }
      types.push_back(static_cast<int32_t>(t));
    }
    max_id = std::max({max_id, s, d});
  }
  const int64_t num_vertices = std::max(num_vertices_hint, max_id + 1);
  int32_t num_types = 1;
  if (!types.empty()) {
    num_types = 1 + *std::max_element(types.begin(), types.end());
  }
  return Graph::FromCoo(num_vertices, std::move(src), std::move(dst), std::move(types),
                        num_types, options);
}

std::optional<Graph> LoadMatrixMarket(const std::string& path, const GraphOptions& options) {
  std::ifstream in(path);
  if (!in) {
    SEASTAR_LOG(Error) << "cannot open " << path;
    return std::nullopt;
  }
  std::string header;
  if (!std::getline(in, header) || !StartsWith(header, "%%MatrixMarket")) {
    SEASTAR_LOG(Error) << path << ": missing MatrixMarket banner";
    return std::nullopt;
  }
  std::istringstream banner(header);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    SEASTAR_LOG(Error) << path << ": only coordinate matrices are supported";
    return std::nullopt;
  }
  const bool has_values = field == "real" || field == "integer";
  if (!has_values && field != "pattern") {
    SEASTAR_LOG(Error) << path << ": unsupported field '" << field << "'";
    return std::nullopt;
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    SEASTAR_LOG(Error) << path << ": unsupported symmetry '" << symmetry << "'";
    return std::nullopt;
  }

  std::string line;
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      break;
    }
  }
  std::istringstream size_line(line);
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t entries = 0;
  size_line >> rows >> cols >> entries;
  if (size_line.fail() || rows <= 0 || cols <= 0 || entries < 0) {
    SEASTAR_LOG(Error) << path << ": malformed size line";
    return std::nullopt;
  }

  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  src.reserve(static_cast<size_t>(entries));
  dst.reserve(static_cast<size_t>(entries));
  for (int64_t i = 0; i < entries; ++i) {
    int64_t r = 0;
    int64_t c = 0;
    double value = 0.0;
    if (!(in >> r >> c)) {
      SEASTAR_LOG(Error) << path << ": truncated entry list at " << i;
      return std::nullopt;
    }
    if (has_values && !(in >> value)) {
      SEASTAR_LOG(Error) << path << ": entry " << i << " missing value";
      return std::nullopt;
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      SEASTAR_LOG(Error) << path << ": entry " << i << " out of bounds";
      return std::nullopt;
    }
    src.push_back(static_cast<int32_t>(r - 1));
    dst.push_back(static_cast<int32_t>(c - 1));
    if (symmetric && r != c) {
      src.push_back(static_cast<int32_t>(c - 1));
      dst.push_back(static_cast<int32_t>(r - 1));
    }
  }
  return Graph::FromCoo(std::max(rows, cols), std::move(src), std::move(dst), {}, 1, options);
}

bool SaveGraphBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SEASTAR_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  WritePod(out, static_cast<int64_t>(graph.num_vertices()));
  WritePod(out, static_cast<int32_t>(graph.num_edge_types()));
  WriteVector(out, graph.edge_src());
  WriteVector(out, graph.edge_dst());
  WriteVector(out, graph.edge_type());
  return static_cast<bool>(out);
}

std::optional<Graph> LoadGraphBinary(const std::string& path, const GraphOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SEASTAR_LOG(Error) << "cannot open " << path;
    return std::nullopt;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    SEASTAR_LOG(Error) << path << ": bad magic";
    return std::nullopt;
  }
  int64_t num_vertices = 0;
  int32_t num_types = 0;
  if (!ReadPod(in, &num_vertices) || !ReadPod(in, &num_types) || num_vertices < 0 ||
      num_types < 1) {
    SEASTAR_LOG(Error) << path << ": bad header";
    return std::nullopt;
  }
  constexpr uint64_t kSanityLimit = uint64_t{1} << 33;  // 8G entries.
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
  std::vector<int32_t> types;
  if (!ReadVector(in, &src, kSanityLimit) || !ReadVector(in, &dst, kSanityLimit) ||
      !ReadVector(in, &types, kSanityLimit) || src.size() != dst.size() ||
      (!types.empty() && types.size() != src.size())) {
    SEASTAR_LOG(Error) << path << ": corrupt edge arrays";
    return std::nullopt;
  }
  for (int32_t v : src) {
    if (v < 0 || v >= num_vertices) {
      SEASTAR_LOG(Error) << path << ": edge endpoint out of range";
      return std::nullopt;
    }
  }
  for (int32_t v : dst) {
    if (v < 0 || v >= num_vertices) {
      SEASTAR_LOG(Error) << path << ": edge endpoint out of range";
      return std::nullopt;
    }
  }
  for (int32_t t : types) {
    if (t < 0 || t >= num_types) {
      SEASTAR_LOG(Error) << path << ": edge type out of range";
      return std::nullopt;
    }
  }
  return Graph::FromCoo(num_vertices, std::move(src), std::move(dst), std::move(types),
                        num_types, options);
}

}  // namespace seastar
