// The Graph object shared by every executor: COO edge list (the edge-id
// ordering that feature tensors are indexed by) plus the in-CSR used by the
// forward pass and the reverse CSR used by the backward pass (paper §6.1,
// §6.3.4). Heterogeneous graphs carry a per-edge type array and type-sorted
// CSR slots (§6.3.5).
#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/tensor.h"

namespace seastar {

struct GraphOptions {
  bool sort_by_degree = true;  // Paper default; off for ablations.
};

class Graph {
 public:
  Graph() = default;

  // Builds from a COO edge list (directed edges src[e] -> dst[e]).
  // `edge_types` may be empty (homogeneous) or have one entry per edge in
  // [0, num_edge_types).
  static Graph FromCoo(int64_t num_vertices, std::vector<int32_t> src, std::vector<int32_t> dst,
                       std::vector<int32_t> edge_types = {}, int32_t num_edge_types = 1,
                       const GraphOptions& options = {});

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return num_edges_; }
  int32_t num_edge_types() const { return num_edge_types_; }
  bool is_heterogeneous() const { return num_edge_types_ > 1; }
  bool sorted_by_degree() const { return sorted_by_degree_; }

  const std::vector<int32_t>& edge_src() const { return edge_src_; }
  const std::vector<int32_t>& edge_dst() const { return edge_dst_; }
  const std::vector<int32_t>& edge_type() const { return edge_type_; }

  // Aggregation over in-neighbors (forward pass): vertices keyed by dst.
  const Csr& in_csr() const { return in_csr_; }
  // Aggregation over out-neighbors (backward pass): vertices keyed by src.
  const Csr& out_csr() const { return out_csr_; }

  // In-degree / out-degree of an original vertex id.
  int64_t InDegree(int32_t v) const { return in_csr_.DegreeOfVertex(v); }
  int64_t OutDegree(int32_t v) const { return out_csr_.DegreeOfVertex(v); }

  // Highest in-degree in the graph (load-skew statistics).
  int64_t MaxInDegree() const;
  double AverageInDegree() const;

  // Degrees as [num_vertices, 1] tensors (what kDegree leaves and AggMean
  // consume). Built lazily on first use and cached for the lifetime of the
  // graph — the graph is immutable after FromCoo, so the cache never goes
  // stale, and copies of the Graph share it.
  const Tensor& InDegreeTensor() const;
  const Tensor& OutDegreeTensor() const;

  // Approximate resident bytes of the graph indexes (both CSRs + COO).
  uint64_t IndexBytes() const;

  std::string DebugString() const;

 private:
  int64_t num_vertices_ = 0;
  int64_t num_edges_ = 0;
  int32_t num_edge_types_ = 1;
  bool sorted_by_degree_ = true;
  std::vector<int32_t> edge_src_;
  std::vector<int32_t> edge_dst_;
  std::vector<int32_t> edge_type_;
  Csr in_csr_;
  Csr out_csr_;

  // Lazily-built degree tensors. Kept behind a shared_ptr so Graph stays
  // copyable (std::mutex is not) and all copies see one cache.
  struct DegreeCache {
    std::mutex mutex;
    Tensor in_degree;
    Tensor out_degree;
  };
  std::shared_ptr<DegreeCache> degree_cache_ = std::make_shared<DegreeCache>();
};

}  // namespace seastar

#endif  // SRC_GRAPH_GRAPH_H_
