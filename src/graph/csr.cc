#include "src/graph/csr.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace seastar {

Csr BuildCsr(int64_t num_vertices, const std::vector<int32_t>& key_endpoint,
             const std::vector<int32_t>& value_endpoint, const std::vector<int32_t>& edge_types,
             const CsrBuildOptions& options) {
  SEASTAR_CHECK_EQ(key_endpoint.size(), value_endpoint.size());
  const bool has_types = !edge_types.empty();
  if (has_types) {
    SEASTAR_CHECK_EQ(edge_types.size(), key_endpoint.size());
  }
  const int64_t num_edges = static_cast<int64_t>(key_endpoint.size());

  Csr csr;
  csr.num_vertices = num_vertices;
  csr.num_edges = num_edges;

  // Degree per original vertex id.
  std::vector<int64_t> degree(static_cast<size_t>(num_vertices), 0);
  for (int32_t v : key_endpoint) {
    SEASTAR_CHECK_GE(v, 0);
    SEASTAR_CHECK_LT(v, num_vertices);
    ++degree[static_cast<size_t>(v)];
  }

  // Position permutation: descending degree (stable on id for determinism),
  // or identity when sorting is off.
  csr.position_vertex.resize(static_cast<size_t>(num_vertices));
  std::iota(csr.position_vertex.begin(), csr.position_vertex.end(), 0);
  if (options.sort_by_degree) {
    std::stable_sort(csr.position_vertex.begin(), csr.position_vertex.end(),
                     [&](int32_t a, int32_t b) {
                       return degree[static_cast<size_t>(a)] > degree[static_cast<size_t>(b)];
                     });
  }
  csr.vertex_position.resize(static_cast<size_t>(num_vertices));
  for (int64_t k = 0; k < num_vertices; ++k) {
    csr.vertex_position[static_cast<size_t>(csr.position_vertex[static_cast<size_t>(k)])] =
        static_cast<int32_t>(k);
  }

  // Offsets per position.
  csr.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (int64_t k = 0; k < num_vertices; ++k) {
    csr.offsets[static_cast<size_t>(k) + 1] =
        csr.offsets[static_cast<size_t>(k)] +
        degree[static_cast<size_t>(csr.position_vertex[static_cast<size_t>(k)])];
  }

  // Fill slots.
  csr.nbr_ids.resize(static_cast<size_t>(num_edges));
  csr.edge_ids.resize(static_cast<size_t>(num_edges));
  if (has_types) {
    csr.edge_types.resize(static_cast<size_t>(num_edges));
  }
  std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const int32_t key = key_endpoint[static_cast<size_t>(e)];
    const int64_t position = csr.vertex_position[static_cast<size_t>(key)];
    const int64_t slot = cursor[static_cast<size_t>(position)]++;
    csr.nbr_ids[static_cast<size_t>(slot)] = value_endpoint[static_cast<size_t>(e)];
    csr.edge_ids[static_cast<size_t>(slot)] = static_cast<int32_t>(e);
    if (has_types) {
      csr.edge_types[static_cast<size_t>(slot)] = edge_types[static_cast<size_t>(e)];
    }
  }

  if (options.sort_slots_by_edge_type && has_types) {
    // Secondary sort within each vertex's slot range so edges of the same
    // type are contiguous (paper §6.3.5). Sort indices, then apply.
    for (int64_t k = 0; k < num_vertices; ++k) {
      const int64_t begin = csr.offsets[static_cast<size_t>(k)];
      const int64_t end = csr.offsets[static_cast<size_t>(k) + 1];
      std::vector<int64_t> order(static_cast<size_t>(end - begin));
      std::iota(order.begin(), order.end(), begin);
      std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return csr.edge_types[static_cast<size_t>(a)] < csr.edge_types[static_cast<size_t>(b)];
      });
      std::vector<int32_t> nbr_tmp, eid_tmp, type_tmp;
      nbr_tmp.reserve(order.size());
      eid_tmp.reserve(order.size());
      type_tmp.reserve(order.size());
      for (int64_t slot : order) {
        nbr_tmp.push_back(csr.nbr_ids[static_cast<size_t>(slot)]);
        eid_tmp.push_back(csr.edge_ids[static_cast<size_t>(slot)]);
        type_tmp.push_back(csr.edge_types[static_cast<size_t>(slot)]);
      }
      std::copy(nbr_tmp.begin(), nbr_tmp.end(), csr.nbr_ids.begin() + begin);
      std::copy(eid_tmp.begin(), eid_tmp.end(), csr.edge_ids.begin() + begin);
      std::copy(type_tmp.begin(), type_tmp.end(), csr.edge_types.begin() + begin);
    }
  }

  return csr;
}

}  // namespace seastar
