// The Table-2 dataset catalogue of the paper, realized synthetically.
//
// The real datasets (cora .. reddit, aifb/mutag/bgs) are not shipped with
// this repository. What the paper's experiments actually exercise are three
// statistics — vertex/edge counts (hence average degree), feature width, and
// degree skew — so each catalogue entry records the paper's exact counts and
// a generator recipe (R-MAT for skewed social-style graphs, Erdos-Renyi for
// the near-regular citation/co-author graphs). Features, labels and splits
// are sampled deterministically from the dataset seed.
//
// Every dataset can be materialized at a reduced `scale`, which multiplies
// both |V| and |E| (preserving average degree) so the full benchmark matrix
// completes on a laptop; `--scale=1` reproduces the paper's exact sizes.
#ifndef SRC_GRAPH_DATASETS_H_
#define SRC_GRAPH_DATASETS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace seastar {

enum class DegreeProfile {
  kUniform,   // Erdos-Renyi: citation / co-author style graphs.
  kPowerLaw,  // R-MAT: social-network style skew (reddit, amazon).
};

struct DatasetSpec {
  std::string name;
  int64_t num_vertices = 0;   // Paper Table 2.
  int64_t num_edges = 0;      // Paper Table 2.
  int64_t feature_dim = 0;    // 0 for the featureless hetero KGs.
  int32_t num_relations = 1;  // Paper Table 2 (#relation).
  int64_t num_classes = 2;
  DegreeProfile profile = DegreeProfile::kUniform;
  // Scale the benches use by default so the whole matrix stays tractable.
  double default_scale = 1.0;
};

// All 12 datasets of Table 2, in paper order.
const std::vector<DatasetSpec>& DatasetCatalog();

// nullptr when unknown.
const DatasetSpec* FindDataset(const std::string& name);

// The 9 homogeneous datasets (GCN/GAT/APPNP) in paper order.
std::vector<DatasetSpec> HomogeneousDatasets();
// The 3 heterogeneous datasets (R-GCN) in paper order.
std::vector<DatasetSpec> HeterogeneousDatasets();

struct DatasetOptions {
  // Multiplies |V| and |E| (clamped to >= 8 vertices, >= 8 edges).
  double scale = 1.0;
  // Caps the feature width after scaling; 0 = no cap. The paper's widest
  // features (8710 for corafull) make the shared dense GEMM dominate every
  // system identically, so benches cap width to keep runs short.
  int64_t max_feature_dim = 0;
  uint64_t seed = 1;
  bool sort_by_degree = true;
  bool add_self_loops = true;  // GCN convention; skipped for hetero KGs.
  double train_fraction = 0.1;
};

struct Dataset {
  DatasetSpec spec;     // The *scaled* spec actually materialized.
  Graph graph;
  Tensor features;      // [N, F]; defined for homogeneous datasets.
  Tensor gcn_norm;      // [N, 1]: 1/sqrt(max(1, in_degree)).
  std::vector<int32_t> labels;      // size N, in [0, num_classes).
  std::vector<int32_t> train_mask;  // Row indices used by the loss.
};

// Materializes `spec` under `options`. Deterministic in (spec, options).
Dataset MakeDataset(const DatasetSpec& spec, const DatasetOptions& options = {});

// Convenience: look up by name and materialize; aborts on unknown name.
Dataset MakeDatasetByName(const std::string& name, const DatasetOptions& options = {});

// Recoverable variant for CLI / service callers: unknown names come back as
// kNotFound listing the valid catalogue instead of killing the process.
StatusOr<Dataset> TryMakeDatasetByName(const std::string& name,
                                       const DatasetOptions& options = {});

}  // namespace seastar

#endif  // SRC_GRAPH_DATASETS_H_
