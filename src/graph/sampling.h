// Mini-batch neighbor sampling (GraphSAGE-style), the training mode of the
// sampling-based systems the paper positions Seastar under ("Euler and
// AliGraph ... Seastar can be used as their GNN training engine", §8) and
// the background mini-batch preparation §6.3.3 alludes to.
//
// SampleNeighborhood draws, for a set of seed vertices, up to `fanout`
// in-neighbors per vertex per hop (without replacement), and assembles the
// union into a compact subgraph with locally renumbered vertices. The
// subgraph is an ordinary Graph — degree-sorted CSRs and all — so every
// executor and model runs on it unchanged.
#ifndef SRC_GRAPH_SAMPLING_H_
#define SRC_GRAPH_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace seastar {

struct SampledSubgraph {
  Graph graph;
  // local_to_global[i] = original id of local vertex i. Seeds come first:
  // local ids [0, num_seeds) are the seeds in their given order.
  std::vector<int32_t> local_to_global;
  int64_t num_seeds = 0;
};

// Samples a `fanouts.size()`-hop neighborhood of `seeds` from `graph`
// (in-edges, matching forward aggregation direction). fanout <= 0 means
// "all neighbors" for that hop. Deterministic given `rng`.
SampledSubgraph SampleNeighborhood(const Graph& graph, const std::vector<int32_t>& seeds,
                                   const std::vector<int>& fanouts, Rng& rng);

// Gathers rows of a global [N, w] tensor into the subgraph's local order.
Tensor GatherLocalFeatures(const SampledSubgraph& subgraph, const Tensor& global_features);

// Gathers per-vertex int labels into local order.
std::vector<int32_t> GatherLocalLabels(const SampledSubgraph& subgraph,
                                       const std::vector<int32_t>& global_labels);

// Splits [0, num_vertices) into shuffled batches of `batch_size` seeds.
std::vector<std::vector<int32_t>> MakeSeedBatches(int64_t num_vertices, int64_t batch_size,
                                                  Rng& rng);

}  // namespace seastar

#endif  // SRC_GRAPH_SAMPLING_H_
