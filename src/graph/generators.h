// Synthetic graph generators. The paper's evaluated optimizations are
// sensitive to two graph properties — average degree (|E|/|V|) and degree
// skew (§6.3.3) — so the generators here control exactly those:
//
//  * ErdosRenyi: near-uniform degrees (citation-graph-like);
//  * RMat: recursive-matrix sampling producing power-law in-degrees
//    (reddit/social-graph-like skew);
//  * Star / Chain / Cycle / Complete: deterministic shapes for unit tests.
//
// All generators are deterministic given the Rng seed and emit simple
// directed COO edge lists without self-loop/duplicate filtering unless noted.
#ifndef SRC_GRAPH_GENERATORS_H_
#define SRC_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace seastar {

struct CooEdges {
  int64_t num_vertices = 0;
  std::vector<int32_t> src;
  std::vector<int32_t> dst;
};

// `num_edges` directed edges with both endpoints uniform; self-loops allowed,
// duplicates allowed (matches the multigraph semantics of GNN edge lists).
CooEdges ErdosRenyi(int64_t num_vertices, int64_t num_edges, Rng& rng);

// R-MAT sampling over a 2^ceil(log2 n) grid, rejecting endpoints >= n.
// Defaults (a=0.57, b=0.19, c=0.19, d=0.05) give a strongly skewed in-degree
// distribution. Larger `a` => more skew.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};
CooEdges Rmat(int64_t num_vertices, int64_t num_edges, Rng& rng, const RmatParams& params = {});

// `num_edges` directed edges whose source is uniform and whose destination
// is drawn within +-`span` of the source (wrapped into range), so most edges
// connect nearby vertex ids. O(E) — usable at multi-million-edge scale where
// the O(V^2) SBM sampler is not — and the natural workload for vertex-range
// sharding: with span << V/num_shards, cross-shard edges are confined to the
// range boundaries and each shard's working set stays cache-resident (see
// bench/bench_shard_scaling.cpp).
CooEdges LocalizedRandom(int64_t num_vertices, int64_t num_edges, int64_t span, Rng& rng);

// All vertices 1..n-1 point at vertex 0.
CooEdges Star(int64_t num_vertices);
// i -> i+1 for i in [0, n-1).
CooEdges Chain(int64_t num_vertices);
// Chain plus the closing edge n-1 -> 0.
CooEdges Cycle(int64_t num_vertices);
// Every ordered pair (i, j), i != j.
CooEdges Complete(int64_t num_vertices);

// Stochastic block model: `communities` equal-sized groups; each ordered
// pair gets an edge with probability p_in (same group) or p_out. Labels are
// the community assignments — the one synthetic family where a GNN can
// genuinely *learn* (see examples/sbm_community.cpp).
struct SbmResult {
  CooEdges edges;
  std::vector<int32_t> labels;
};
SbmResult StochasticBlockModel(int64_t num_vertices, int32_t communities, double p_in,
                               double p_out, Rng& rng);

// Adds a self-loop on every vertex (GCN convention).
void AddSelfLoops(CooEdges& edges);

// Assigns a random type in [0, num_types) to each edge, biased so that types
// follow a Zipf-ish distribution (real KGs have few frequent relations).
std::vector<int32_t> RandomEdgeTypes(int64_t num_edges, int32_t num_types, Rng& rng);

// Convenience: build a Graph straight from a generator result.
Graph ToGraph(CooEdges edges, std::vector<int32_t> edge_types = {}, int32_t num_edge_types = 1,
              const GraphOptions& options = {});

}  // namespace seastar

#endif  // SRC_GRAPH_GENERATORS_H_
