#include "src/exec/tiling.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"

namespace seastar {
namespace {

std::atomic<bool>& TilingFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SEASTAR_TILING");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool TilingEnabled() { return TilingFlag().load(std::memory_order_relaxed); }

void SetTilingEnabled(bool enabled) {
  TilingFlag().store(enabled, std::memory_order_relaxed);
}

TilePlan ComputeTilePlan(const std::vector<int64_t>& offsets, int64_t num_vertices,
                         int32_t feature_width, int num_workers,
                         const TilePlanOptions& options) {
  SEASTAR_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_vertices + 1);
  SEASTAR_CHECK_GT(feature_width, 0);

  TilePlan plan;
  plan.tile_width = std::min(feature_width, options.max_tile_width);
  plan.num_tiles = static_cast<int32_t>((feature_width + plan.tile_width - 1) / plan.tile_width);

  const int64_t total_edges = offsets[static_cast<size_t>(num_vertices)];
  const int64_t tile_bytes = static_cast<int64_t>(plan.tile_width) * 4;

  // Edge budget per segment: the L2 bound (each edge drags in at most one
  // source-row tile), tightened so the launch still yields a few segments
  // per worker on small graphs. Vertex cap: the zero/low-degree tail of a
  // degree-sorted CSR packs millions of positions into no edges at all;
  // bounding positions keeps those segments balanced for the per-vertex
  // (init + store) work that remains.
  const int64_t workers = std::max(1, num_workers);
  const int64_t parallel_grain =
      std::max<int64_t>(1, total_edges / (options.segments_per_worker * workers));
  const int64_t edge_budget =
      std::max<int64_t>(1, std::min(options.l2_budget_bytes / tile_bytes, parallel_grain));
  const int64_t vertex_cap = std::max<int64_t>(
      1024, num_vertices / (options.segments_per_worker * workers));

  plan.bounds.reserve(16);
  plan.bounds.push_back(0);
  int64_t seg_start = 0;
  for (int64_t pos = 0; pos < num_vertices; ++pos) {
    const int64_t seg_edges = offsets[static_cast<size_t>(pos) + 1] -
                              offsets[static_cast<size_t>(seg_start)];
    const int64_t seg_vertices = pos + 1 - seg_start;
    if ((seg_edges > edge_budget || seg_vertices > vertex_cap) && seg_vertices > 1) {
      // Close the segment *before* `pos` (pos overflowed the budget);
      // a single over-budget vertex still forms its own segment.
      plan.bounds.push_back(pos);
      seg_start = pos;
    }
  }
  plan.bounds.push_back(num_vertices);
  // A graph with zero vertices degenerates to one empty segment.
  if (num_vertices == 0) {
    plan.bounds = {0, 0};
  }
  return plan;
}

}  // namespace seastar
