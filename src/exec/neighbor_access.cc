#include "src/exec/neighbor_access.h"

#include <atomic>
#include <cstring>

#include "src/common/logging.h"
#include "src/parallel/simt.h"
#include "src/parallel/thread_pool.h"

namespace seastar {
namespace {

inline void AtomicAdd(float* target, float value) {
  std::atomic_ref<float> ref(*target);
  float current = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(current, current + value, std::memory_order_relaxed)) {
  }
}

inline int64_t FindKeyPosition(const std::vector<int64_t>& offsets, int64_t slot) {
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(offsets.size()) - 2;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (offsets[static_cast<size_t>(mid)] <= slot) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// Vertex-parallel edge-sequential aggregation with an explicit SIMT lane
// loop of `lanes_per_group` lanes per vertex. Lanes with lane >= D execute
// as masked no-ops — they still cost an iteration, exactly like idle SIMT
// lanes cost issue slots on a GPU. This is what separates kBasic
// (lanes_per_group = block_size) from the FAT variants (lanes = 2^k <= D).
void VertexParallelKernel(const Csr& csr, const Tensor& features, Tensor& out,
                          int lanes_per_group, int groups_per_block, int64_t num_blocks,
                          BlockSchedule schedule) {
  const int64_t num_vertices = csr.num_vertices;
  const int64_t d = features.dim(1);
  const float* feat = features.data();
  float* out_base = out.data();

  SimtLaunchParams launch;
  launch.num_blocks = num_blocks;
  launch.schedule = schedule;
  LaunchBlocks(launch, [&](int64_t block_id, int /*worker*/) {
    const int64_t first = block_id * groups_per_block;
    const int64_t last = std::min<int64_t>(first + groups_per_block, num_vertices);
    for (int64_t k = first; k < last; ++k) {
      const int64_t key = csr.position_vertex[static_cast<size_t>(k)];
      float* out_row = out_base + key * d;
      // Registers initialized per chunk inside the lane loop below; here we
      // zero the destination row once (it is private to this group).
      std::memset(out_row, 0, static_cast<size_t>(d) * sizeof(float));
      const int64_t begin = csr.offsets[static_cast<size_t>(k)];
      const int64_t end = csr.offsets[static_cast<size_t>(k) + 1];
      // The feature vector is covered in chunks of lanes_per_group lanes;
      // every lane iteration executes, active or masked.
      for (int64_t chunk = 0; chunk < d; chunk += lanes_per_group) {
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t nbr = csr.nbr_ids[static_cast<size_t>(slot)];
          const float* nbr_row = feat + nbr * d;
          for (int lane = 0; lane < lanes_per_group; ++lane) {
            const int64_t j = chunk + lane;
            if (j < d) {
              out_row[j] += nbr_row[j];
            }
            // Masked lanes fall through: the iteration itself is the cost.
          }
        }
      }
    }
  });
}

}  // namespace

const char* NeighborAccessStrategyName(NeighborAccessStrategy strategy) {
  switch (strategy) {
    case NeighborAccessStrategy::kDglBinarySearch:
      return "DGL(binary-search)";
    case NeighborAccessStrategy::kBasic:
      return "Basic";
    case NeighborAccessStrategy::kFaUnsorted:
      return "FA+Unsorted";
    case NeighborAccessStrategy::kFaSortedAtomic:
      return "FA+Sorting+Atomic";
    case NeighborAccessStrategy::kFaSortedDynamic:
      return "FA+Sorting+Dynamic";
  }
  return "?";
}

Tensor RunNeighborAccess(NeighborAccessStrategy strategy, const Graph& sorted_graph,
                         const Graph& unsorted_graph, const Tensor& features, int block_size) {
  SEASTAR_CHECK_EQ(features.dim(0), sorted_graph.num_vertices());
  const int64_t num_vertices = sorted_graph.num_vertices();
  const int64_t d = features.dim(1);
  Tensor out({num_vertices, d});

  switch (strategy) {
    case NeighborAccessStrategy::kDglBinarySearch: {
      // Edge-parallel: binary search per edge, atomic accumulation, dst rows
      // re-loaded per edge (paper §6.3's description of minigun).
      out.Fill(0.0f);
      const Csr& csr = unsorted_graph.in_csr();
      const float* feat = features.data();
      float* out_base = out.data();
      ParallelFor(csr.num_edges, [&](int64_t begin, int64_t end) {
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t position = FindKeyPosition(csr.offsets, slot);
          const int64_t key = csr.position_vertex[static_cast<size_t>(position)];
          const int64_t nbr = csr.nbr_ids[static_cast<size_t>(slot)];
          const float* nbr_row = feat + nbr * d;
          float* out_row = out_base + key * d;
          for (int64_t j = 0; j < d; ++j) {
            AtomicAdd(&out_row[j], nbr_row[j]);
          }
        }
      });
      return out;
    }
    case NeighborAccessStrategy::kBasic: {
      // One vertex per whole block: all block_size lanes iterate, most idle.
      const Csr& csr = unsorted_graph.in_csr();
      VertexParallelKernel(csr, features, out, /*lanes_per_group=*/block_size,
                           /*groups_per_block=*/1, /*num_blocks=*/num_vertices,
                           BlockSchedule::kChunkedDynamic);
      return out;
    }
    case NeighborAccessStrategy::kFaUnsorted:
    case NeighborAccessStrategy::kFaSortedAtomic:
    case NeighborAccessStrategy::kFaSortedDynamic: {
      const bool sorted = strategy != NeighborAccessStrategy::kFaUnsorted;
      const Csr& csr = sorted ? sorted_graph.in_csr() : unsorted_graph.in_csr();
      const FatGeometry geometry = FatGeometry::Compute(num_vertices, d, block_size);
      const BlockSchedule schedule = strategy == NeighborAccessStrategy::kFaSortedAtomic
                                         ? BlockSchedule::kAtomicPerBlock
                                         : BlockSchedule::kChunkedDynamic;
      VertexParallelKernel(csr, features, out, geometry.group_size, geometry.groups_per_block,
                           geometry.num_blocks, schedule);
      return out;
    }
  }
  SEASTAR_LOG(Fatal) << "unknown strategy";
  return out;
}

}  // namespace seastar
