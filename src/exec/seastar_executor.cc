#include "src/exec/seastar_executor.h"

#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/tracing.h"
#include "src/exec/compiled_program.h"
#include "src/exec/kernel_counter.h"
#include "src/exec/plan_cache.h"
#include "src/exec/pointwise.h"
#include "src/exec/tiling.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/allocator.h"
#include "src/tensor/simd.h"

namespace seastar {
namespace {

// Always-on per-tile observability (cached handles; bumped once per unit
// launch on the orchestration path, never inside the edge loops). The SIMD
// dispatch counter bakes the resolved ISA into a label, Prometheus-style, so
// an exporter shows which row-kernel variant this process actually ran.
struct TilingCounters {
  metrics::Counter* segments;        // seastar_tiling_segments_total
  metrics::Counter* tile_passes;     // seastar_tiling_tile_passes_total
  metrics::Counter* edge_visits;     // seastar_tiling_edge_visits_total
  metrics::Counter* tiled_units;     // seastar_tiling_units_tiled_total
  metrics::Counter* untiled_units;   // seastar_tiling_units_untiled_total
  metrics::Counter* simd_dispatch;   // seastar_simd_unit_dispatch_total{isa=...}
};

const TilingCounters& Tiling() {
  static const TilingCounters counters = [] {
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
    TilingCounters c;
    c.segments = registry.GetCounter("seastar_tiling_segments_total");
    c.tile_passes = registry.GetCounter("seastar_tiling_tile_passes_total");
    c.edge_visits = registry.GetCounter("seastar_tiling_edge_visits_total");
    c.tiled_units = registry.GetCounter("seastar_tiling_units_tiled_total");
    c.untiled_units = registry.GetCounter("seastar_tiling_units_untiled_total");
    c.simd_dispatch = registry.GetCounter(std::string("seastar_simd_unit_dispatch_total{isa=\"") +
                                          simd::SimdIsaName() + "\"}");
    registry.GetGauge("seastar_simd_lanes")->Set(static_cast<double>(simd::SimdLanes()));
    return c;
  }();
  return counters;
}

inline const float* Resolve(const Operand& op, const float* scratch, int64_t key, int64_t nbr,
                            int64_t eid, int32_t etype, int64_t typed_stride) {
  switch (op.src) {
    case Src::kReg:
      return scratch + op.reg;
    case Src::kKeyRow:
      return op.base + key * op.width;
    case Src::kNbrRow:
      return op.base + nbr * op.width;
    case Src::kEdgeRow:
      return op.base + eid * op.width;
    case Src::kTypedRow:
      return op.base + (static_cast<int64_t>(etype) * typed_stride + nbr) * op.width;
    case Src::kScalar:
      return &op.scalar;
  }
  return nullptr;
}

// Evaluates one pointwise instruction into scratch.
inline void EvalInstr(const Instr& instr, float* scratch, const float* a, const float* b) {
  PointwiseApply(instr.kind, instr.attr, scratch + instr.out_reg, instr.width, a, instr.a.width,
                 b, instr.b.width);
}

inline void AtomicStoreRow(float* dst, const float* src, int32_t width) {
  // Benign overwrite of identical values from concurrent FAT groups;
  // relaxed atomics keep it defined behaviour.
  for (int32_t j = 0; j < width; ++j) {
    std::atomic_ref<float>(dst[j]).store(src[j], std::memory_order_relaxed);
  }
}

// Per-worker hot-loop counter, cacheline-padded against false sharing.
struct alignas(64) WorkerEdgeCount {
  int64_t edges = 0;
};

// ---- FastPath edge loops ------------------------------------------------------------------------
// Operand resolution for the specialized loops: registers, immediates and key
// rows do not change across one vertex's edge loop and collapse to a single
// pointer; nbr/edge rows index their base per slot.
enum class RowVary : uint8_t { kFixed, kNbr, kEdge };

inline RowVary ClassifyRow(const Operand& op, const float* scratch, int64_t key,
                           const float** fixed) {
  switch (op.src) {
    case Src::kReg:
      *fixed = scratch + op.reg;
      return RowVary::kFixed;
    case Src::kScalar:
      *fixed = &op.scalar;
      return RowVary::kFixed;
    case Src::kKeyRow:
      *fixed = op.base + key * op.width;
      return RowVary::kFixed;
    case Src::kNbrRow:
      return RowVary::kNbr;
    case Src::kEdgeRow:
      return RowVary::kEdge;
    case Src::kTypedRow:
      break;  // Excluded by fast-path detection.
  }
  return RowVary::kFixed;
}

// Fused replacements for the interpreted edge loop (semantics identical; see
// FastPath in compiled_program.h). These exist because per-edge dispatch —
// two operand switches, an op switch and an agg switch — costs more than the
// arithmetic itself at GNN feature widths.
//
// The loop is column-ranged: it accumulates columns [c0, c0 + n) of the
// feature row into `acc[0 .. n)`. The untiled path calls it once per vertex
// with the full width; the tiled path calls it once per (vertex, feature
// tile). Both route every column through the *same* runtime-dispatched SIMD
// kernel (src/tensor/simd.h), and each kernel is elementwise-independent
// across columns, so the two partitionings produce bit-identical results —
// the invariant the SEASTAR_TILING=0 parity tests pin down.
inline void RunFastEdgeLoop(const CompiledUnit& unit, const Csr& csr, float* scratch, float* acc,
                            int64_t key, int64_t begin, int64_t end, int32_t c0, int32_t n) {
  const AggInstr& agg = unit.aggs[0];
  const int32_t w = agg.width;

  if (unit.fast_path == FastPath::kCopySum) {
    const Operand& in = agg.input;
    const float* fixed = nullptr;
    const RowVary vary = ClassifyRow(in, scratch, key, &fixed);
    const auto row = [&](int64_t slot) {
      return vary == RowVary::kFixed
                 ? fixed
                 : in.base + (vary == RowVary::kNbr ? csr.nbr_ids[static_cast<size_t>(slot)]
                                                    : csr.edge_ids[static_cast<size_t>(slot)]) *
                                 in.width;
    };
    if (in.width == 1 && w > 1) {
      for (int64_t slot = begin; slot < end; ++slot) {
        simd::AddScalarRow(acc, row(slot)[0], n);
      }
    } else {
      for (int64_t slot = begin; slot < end; ++slot) {
        simd::AddRow(acc, row(slot) + c0, n);
      }
    }
    return;
  }

  // kMulSum: acc[j] += a[j] * b[j], width-1 broadcast on either operand.
  const Instr& mul = unit.edge[0];
  const int32_t wa = mul.a.width;
  const int32_t wb = mul.b.width;
  const float* a_fixed = nullptr;
  const float* b_fixed = nullptr;
  const RowVary a_vary = ClassifyRow(mul.a, scratch, key, &a_fixed);
  const RowVary b_vary = ClassifyRow(mul.b, scratch, key, &b_fixed);
  const auto a_row = [&](int64_t slot) {
    return a_vary == RowVary::kFixed
               ? a_fixed
               : mul.a.base + (a_vary == RowVary::kNbr ? csr.nbr_ids[static_cast<size_t>(slot)]
                                                       : csr.edge_ids[static_cast<size_t>(slot)]) *
                                  wa;
  };
  const auto b_row = [&](int64_t slot) {
    return b_vary == RowVary::kFixed
               ? b_fixed
               : mul.b.base + (b_vary == RowVary::kNbr ? csr.nbr_ids[static_cast<size_t>(slot)]
                                                       : csr.edge_ids[static_cast<size_t>(slot)]) *
                                  wb;
  };
  if (wa == w && wb == 1) {
    for (int64_t slot = begin; slot < end; ++slot) {
      simd::AxpyRow(acc, a_row(slot) + c0, b_row(slot)[0], n);
    }
  } else if (wa == 1 && wb == w) {
    for (int64_t slot = begin; slot < end; ++slot) {
      simd::AxpyRow(acc, b_row(slot) + c0, a_row(slot)[0], n);
    }
  } else if (wa == w && wb == w) {
    for (int64_t slot = begin; slot < end; ++slot) {
      simd::MulAddRow(acc, a_row(slot) + c0, b_row(slot) + c0, n);
    }
  } else {
    // Unusual width mix; broadcast-indexed scalar form. Never tiled
    // (`tilable` requires one of the three shapes above), so c0 == 0 here.
    for (int64_t slot = begin; slot < end; ++slot) {
      const float* x = a_row(slot);
      const float* y = b_row(slot);
      for (int32_t j = 0; j < w; ++j) {
        acc[j] = __builtin_fmaf(x[wa == 1 ? 0 : j], y[wb == 1 ? 0 : j], acc[j]);
      }
    }
  }
}

}  // namespace

ExecutionPlan SeastarExecutor::Plan(const GirGraph& gir) const {
  FusionOptions fusion_options;
  fusion_options.enable_fusion = options_.enable_fusion;
  return BuildExecutionPlan(gir, fusion_options);
}

RunResult SeastarExecutor::Run(const GirGraph& gir, const Graph& graph,
                               const FeatureMap& features, const RunContext& ctx) const {
  // Hoisted once: with no (enabled) profiler installed every hook below is a
  // null-pointer test on the orchestration path only.
  Profiler* profiler =
      ctx.profiler != nullptr && ctx.profiler->enabled() ? ctx.profiler : nullptr;
  ProfileScope run_span(profiler, "seastar", "exec");
  const TensorAllocator& allocator = TensorAllocator::Get();
  const uint64_t run_live_before = allocator.live_bytes();
  const uint64_t run_peak_before = allocator.peak_bytes();
  const uint64_t run_pool_hits_before = allocator.pool_hits();
  const uint64_t run_fresh_mallocs_before = allocator.fresh_mallocs();

  // Plan + register-compile once per distinct GIR, process-wide (keyed on
  // content fingerprint and fusion options): epoch N>1 reuses the compiled
  // template and only rebinds base pointers below.
  FusionOptions fusion_options;
  fusion_options.enable_fusion = options_.enable_fusion;
  bool plan_hit = false;
  const std::shared_ptr<const CompiledProgram> program =
      PlanCache::Get().GetOrCompile(gir, fusion_options, &plan_hit);
  const ExecutionPlan& plan = program->plan;

  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();
  const int32_t num_types = graph.num_edge_types();

  // Materialized tensors by node id.
  auto saved = std::make_shared<std::map<int32_t, Tensor>>();
  // Leaf bindings by node id (not owned by `saved` — caller inputs, plus the
  // graph's cached degree tensors).
  std::map<int32_t, Tensor> leaf_value;

  // Bind leaves. Scalars (P-typed constants and arithmetic on them) were
  // already evaluated at compile time into program->scalar_value.
  for (const Node& node : gir.nodes()) {
    switch (node.kind) {
      case OpKind::kInput: {
        if (node.type == GraphType::kEdge) {
          auto it = features.edge.find(node.name);
          SEASTAR_CHECK(it != features.edge.end()) << "missing edge feature '" << node.name << "'";
          SEASTAR_CHECK_EQ(it->second.dim(0), num_edges);
          SEASTAR_CHECK_EQ(it->second.dim(1), node.width);
          leaf_value[node.id] = it->second;
        } else {
          auto it = features.vertex.find(node.name);
          SEASTAR_CHECK(it != features.vertex.end())
              << "missing vertex feature '" << node.name << "'";
          SEASTAR_CHECK_EQ(it->second.dim(0), num_vertices);
          SEASTAR_CHECK_EQ(it->second.dim(1), node.width);
          leaf_value[node.id] = it->second;
        }
        break;
      }
      case OpKind::kInputTypedSrc: {
        auto it = features.typed_vertex.find(node.name);
        SEASTAR_CHECK(it != features.typed_vertex.end())
            << "missing typed feature '" << node.name << "'";
        SEASTAR_CHECK_EQ(it->second.ndim(), 3);
        SEASTAR_CHECK_EQ(it->second.dim(0), num_types);
        SEASTAR_CHECK_EQ(it->second.dim(1), num_vertices);
        SEASTAR_CHECK_EQ(it->second.dim(2), node.width);
        leaf_value[node.id] = it->second;
        break;
      }
      case OpKind::kDegree:
        // Shallow copies of the graph's lazily-built caches.
        leaf_value[node.id] =
            node.type == GraphType::kDst ? graph.InDegreeTensor() : graph.OutDegreeTensor();
        break;
      default:
        break;
    }
  }

  // Allocate materialized tensors (served from the allocator's pool in
  // steady state — same shapes every epoch).
  for (int32_t id = 0; id < gir.num_nodes(); ++id) {
    if (!plan.materialized[static_cast<size_t>(id)]) {
      continue;
    }
    const Node& node = gir.node(id);
    Tensor tensor;
    if (node.kind == OpKind::kAggTypedToSrc) {
      tensor = Tensor::Zeros({num_types, num_vertices, node.width});
    } else if (node.type == GraphType::kEdge) {
      tensor = Tensor({num_edges, node.width});
    } else {
      tensor = Tensor({num_vertices, node.width});
    }
    (*saved)[id] = std::move(tensor);
  }

  // Per-run base-pointer table, indexed by node id; PatchUnit splices these
  // into copies of the compiled templates.
  std::vector<float*> node_base(static_cast<size_t>(gir.num_nodes()), nullptr);
  for (auto& [id, tensor] : leaf_value) {
    node_base[static_cast<size_t>(id)] = tensor.data();
  }
  for (auto& [id, tensor] : *saved) {
    node_base[static_cast<size_t>(id)] = tensor.data();
  }

  // ---- Run each unit ----------------------------------------------------------------------------
  for (size_t unit_index = 0; unit_index < plan.units.size(); ++unit_index) {
    // A fused unit is the smallest schedulable quantum: poll the ambient
    // request deadline here so an expired request aborts before claiming the
    // SIMT pool for another kernel. No-deadline runs pay one TLS load.
    CheckExecutionDeadline("seastar unit");
    const FusedUnit& fused = plan.units[unit_index];
    ProfileScope unit_span(
        profiler, profiler != nullptr ? program->unit_labels[unit_index] : std::string(),
        "unit");
    // Per-unit launch span on the ambient request trace: the finest grain of
    // tail-latency attribution ("which fused kernel ate the budget").
    trace::AmbientSpan trace_unit_span("unit");
    trace_unit_span.Detail(program->unit_labels[unit_index]);
    AddKernelLaunches(1);

    CompiledUnit unit = program->units[unit_index];  // Copy the template...
    PatchUnit(&unit, node_base, num_vertices);       // ...and bind this run's pointers.

    const Csr& csr =
        unit.orientation == GraphType::kDst ? graph.in_csr() : graph.out_csr();

    // ---- Launch -------------------------------------------------------------------------------
    const int64_t typed_stride = num_vertices;
    const int num_workers = ThreadPool::Current().num_threads() + 1;

    // Per-worker register scratch, one cacheline-aligned row per worker so
    // concurrent FAT groups never false-share. A pooled Tensor rather than
    // fresh vectors: in steady state (same GIR, same pool) the allocation is
    // a pool hit, so the whole epoch runs with zero fresh mallocs.
    const int64_t scratch_stride =
        (static_cast<int64_t>(std::max(unit.scratch_floats, 1)) + 15) & ~int64_t{15};
    Tensor scratch_tensor = Tensor::Zeros({num_workers, scratch_stride});
    float* scratch_base = scratch_tensor.data();

    // Profiling-only per-worker traversal counters, merged after the launch
    // (never touched when profiling is off; one padded slot per worker so
    // the edge loop stays contention-free when it is on).
    std::vector<WorkerEdgeCount> edge_counts(
        profiler != nullptr ? static_cast<size_t>(num_workers) : 0);
    WorkerEdgeCount* edge_slots = edge_counts.empty() ? nullptr : edge_counts.data();

    // Cache-blocked tiled launch (ISSUE 8): fast-path units whose per-vertex
    // work is only the edge loop plus the aggregation store run segment-by-
    // segment (L2-sized destination ranges) and feature-tile-by-tile
    // (L1-sized column ranges), re-walking each segment's edges once per
    // tile. Same kernels, same per-column operation order as the untiled
    // loop below — only the iteration space is reshaped.
    const bool tiled = unit.tilable && TilingEnabled();
    if (tiled) {
      const std::shared_ptr<const TilePlan> tile_plan =
          program->TilingFor(unit_index, csr, num_workers);
      const int64_t num_segments = tile_plan->num_segments();
      const AggInstr& agg = unit.aggs[0];
      const int32_t w = agg.width;
      const int32_t tile_width = tile_plan->tile_width;
      const bool is_mean = agg.kind == OpKind::kAggMean;

      SimtLaunchStats launch_stats;
      SimtLaunchParams launch;
      launch.num_blocks = num_segments;
      launch.schedule = options_.schedule;
      launch.chunk_size = options_.dynamic_chunk;
      launch.stats = profiler != nullptr ? &launch_stats : nullptr;

      LaunchBlocks(launch, [&](int64_t segment, int worker) {
        float* acc = scratch_base + worker * scratch_stride;
        const int64_t p_begin = tile_plan->bounds[static_cast<size_t>(segment)];
        const int64_t p_end = tile_plan->bounds[static_cast<size_t>(segment) + 1];
        for (int32_t c0 = 0; c0 < w; c0 += tile_width) {
          const int32_t n = std::min(tile_width, w - c0);
          for (int64_t k = p_begin; k < p_end; ++k) {
            const int64_t key = csr.position_vertex[static_cast<size_t>(k)];
            const int64_t begin = csr.offsets[static_cast<size_t>(k)];
            const int64_t end = csr.offsets[static_cast<size_t>(k) + 1];
            if (edge_slots != nullptr && c0 == 0) {
              edge_slots[worker].edges += end - begin;  // Unique edges, not re-walks.
            }
            for (int32_t j = 0; j < n; ++j) {
              acc[j] = 0.0f;
            }
            RunFastEdgeLoop(unit, csr, acc, acc, key, begin, end, c0, n);
            if (is_mean) {
              const float inv = end > begin ? 1.0f / static_cast<float>(end - begin) : 0.0f;
              simd::ScaleRow(acc, inv, n);
            }
            std::memcpy(agg.mat_base + key * w + c0, acc,
                        static_cast<size_t>(n) * sizeof(float));
          }
        }
      });

      const TilingCounters& counters = Tiling();
      const int64_t tile_passes = num_segments * tile_plan->num_tiles;
      counters.segments->Add(num_segments);
      counters.tile_passes->Add(tile_passes);
      counters.edge_visits->Add(csr.num_edges * tile_plan->num_tiles);
      counters.tiled_units->Add(1);
      counters.simd_dispatch->Add(1);

      if (ProfileEvent* event = unit_span.event()) {
        int64_t edges = 0;
        for (const WorkerEdgeCount& count : edge_counts) {
          edges += count.edges;
        }
        event->edges = edges;
        event->fat_groups = num_vertices;
        event->fat_group_size = 1;  // Vertex-sequential within a segment.
        event->num_blocks = num_segments;
        event->dispatches = launch_stats.dispatches;
        event->schedule = BlockScheduleName(options_.schedule);
        event->kernel_launches = 1;
        event->tile_segments = num_segments;
        event->tile_passes = tile_passes;
        event->tile_width = tile_width;
        event->simd_isa = simd::SimdIsaName();
        event->bytes_materialized =
            num_vertices * w * static_cast<int64_t>(sizeof(float));
      }
      continue;
    }
    Tiling().untiled_units->Add(1);

    const FatGeometry geometry =
        program->GeometryFor(unit_index, num_vertices, options_.block_size);
    SimtLaunchStats launch_stats;
    SimtLaunchParams launch;
    launch.num_blocks = geometry.num_blocks;
    launch.schedule = options_.schedule;
    launch.chunk_size = options_.dynamic_chunk;
    launch.stats = profiler != nullptr ? &launch_stats : nullptr;

    LaunchBlocks(launch, [&](int64_t block_id, int worker) {
      float* scratch = scratch_base + worker * scratch_stride;
      const int64_t first = geometry.FirstItemOfBlock(block_id);
      const int64_t last = std::min<int64_t>(first + geometry.groups_per_block, num_vertices);
      for (int64_t k = first; k < last; ++k) {
        const int64_t key = unit.needs_edge_loop || !csr.position_vertex.empty()
                                ? csr.position_vertex[static_cast<size_t>(k)]
                                : k;
        // 1. Loop-invariant key-side ops.
        for (const Instr& instr : unit.invariant) {
          const float* a = Resolve(instr.a, scratch, key, /*nbr=*/0, /*eid=*/0, 0, typed_stride);
          const float* b = instr.binary
                               ? Resolve(instr.b, scratch, key, 0, 0, 0, typed_stride)
                               : nullptr;
          EvalInstr(instr, scratch, a, b);
          if (instr.mat == MatKind::kKeyRow) {
            std::memcpy(instr.mat_base + key * instr.width, scratch + instr.out_reg,
                        static_cast<size_t>(instr.width) * sizeof(float));
          }
        }
        // 2. Aggregation initialization (Alg. 1 line 7).
        for (const AggInstr& agg : unit.aggs) {
          float* acc = scratch + agg.acc_reg;
          const float init =
              (agg.kind == OpKind::kAggMax || agg.kind == OpKind::kAggTypeSumThenMax) ? -FLT_MAX
                                                                                      : 0.0f;
          for (int32_t j = 0; j < agg.width; ++j) {
            acc[j] = init;
          }
          if (agg.inner_reg > 0 || agg.kind == OpKind::kAggTypeSumThenMax ||
              agg.kind == OpKind::kAggTypedToSrc) {
            float* inner = scratch + agg.inner_reg;
            for (int32_t j = 0; j < agg.width; ++j) {
              inner[j] = 0.0f;
            }
          }
        }

        const int64_t begin = unit.needs_edge_loop ? csr.offsets[static_cast<size_t>(k)] : 0;
        const int64_t end = unit.needs_edge_loop ? csr.offsets[static_cast<size_t>(k) + 1] : 0;
        const int64_t degree = end - begin;
        int32_t prev_type = -1;
        if (edge_slots != nullptr) {
          edge_slots[worker].edges += degree;
        }

        // 3. Edge-sequential loop (Alg. 1 lines 8-14) — fused fast path when
        // the unit's shape allows, interpreted otherwise.
        if (unit.fast_path != FastPath::kNone) {
          RunFastEdgeLoop(unit, csr, scratch, scratch + unit.aggs[0].acc_reg, key, begin, end,
                          /*c0=*/0, unit.aggs[0].width);
        } else
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t nbr = csr.nbr_ids[static_cast<size_t>(slot)];
          const int64_t eid = csr.edge_ids[static_cast<size_t>(slot)];
          const int32_t etype =
              csr.edge_types.empty() ? 0 : csr.edge_types[static_cast<size_t>(slot)];

          // Edge-type boundary: flush two-level aggregations (§6.3.5).
          if (unit.has_typed_agg && etype != prev_type && prev_type >= 0) {
            for (const AggInstr& agg : unit.aggs) {
              float* inner = scratch + agg.inner_reg;
              float* acc = scratch + agg.acc_reg;
              if (agg.kind == OpKind::kAggTypeSumThenMax) {
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] = std::max(acc[j], inner[j]);
                  inner[j] = 0.0f;
                }
              } else if (agg.kind == OpKind::kAggTypedToSrc) {
                float* row = agg.mat_base +
                             (static_cast<int64_t>(prev_type) * agg.typed_rows + key) * agg.width;
                std::memcpy(row, inner, static_cast<size_t>(agg.width) * sizeof(float));
                for (int32_t j = 0; j < agg.width; ++j) {
                  inner[j] = 0.0f;
                }
              }
            }
          }
          prev_type = etype;

          for (const Instr& instr : unit.edge) {
            const float* a = Resolve(instr.a, scratch, key, nbr, eid, etype, typed_stride);
            const float* b =
                instr.binary ? Resolve(instr.b, scratch, key, nbr, eid, etype, typed_stride)
                             : nullptr;
            EvalInstr(instr, scratch, a, b);
            if (instr.mat == MatKind::kEdgeRow) {
              std::memcpy(instr.mat_base + eid * instr.width, scratch + instr.out_reg,
                          static_cast<size_t>(instr.width) * sizeof(float));
            } else if (instr.mat == MatKind::kNbrRow) {
              AtomicStoreRow(instr.mat_base + nbr * instr.width, scratch + instr.out_reg,
                             instr.width);
            }
          }
          for (const AggInstr& agg : unit.aggs) {
            const float* value =
                Resolve(agg.input, scratch, key, nbr, eid, etype, typed_stride);
            const int32_t wv = agg.input.width;
            switch (agg.kind) {
              case OpKind::kAggSum:
              case OpKind::kAggMean: {
                float* acc = scratch + agg.acc_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] += value[wv == 1 ? 0 : j];
                }
                break;
              }
              case OpKind::kAggMax: {
                float* acc = scratch + agg.acc_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] = std::max(acc[j], value[wv == 1 ? 0 : j]);
                }
                break;
              }
              case OpKind::kAggTypeSumThenMax:
              case OpKind::kAggTypedToSrc: {
                float* inner = scratch + agg.inner_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  inner[j] += value[wv == 1 ? 0 : j];
                }
                break;
              }
              default:
                break;
            }
          }
        }

        // 4. Aggregation output (Alg. 1 lines 15-16).
        for (const AggInstr& agg : unit.aggs) {
          float* acc = scratch + agg.acc_reg;
          if (unit.has_typed_agg && prev_type >= 0) {
            float* inner = scratch + agg.inner_reg;
            if (agg.kind == OpKind::kAggTypeSumThenMax) {
              for (int32_t j = 0; j < agg.width; ++j) {
                acc[j] = std::max(acc[j], inner[j]);
              }
            } else if (agg.kind == OpKind::kAggTypedToSrc) {
              float* row = agg.mat_base +
                           (static_cast<int64_t>(prev_type) * agg.typed_rows + key) * agg.width;
              std::memcpy(row, inner, static_cast<size_t>(agg.width) * sizeof(float));
            }
          }
          if (agg.kind == OpKind::kAggMean) {
            const float inv = degree > 0 ? 1.0f / static_cast<float>(degree) : 0.0f;
            // Same dispatched kernel as the tiled finalize — a lone multiply
            // per column, so partitioning cannot perturb the scaling either.
            simd::ScaleRow(acc, inv, agg.width);
          }
          if ((agg.kind == OpKind::kAggMax || agg.kind == OpKind::kAggTypeSumThenMax) &&
              degree == 0) {
            for (int32_t j = 0; j < agg.width; ++j) {
              acc[j] = 0.0f;
            }
          }
          if (agg.materialized && agg.kind != OpKind::kAggTypedToSrc) {
            std::memcpy(agg.mat_base + key * agg.width, acc,
                        static_cast<size_t>(agg.width) * sizeof(float));
          }
        }
        // 5. Post-aggregation vertex ops (Alg. 1 line 17).
        for (const Instr& instr : unit.post) {
          const float* a = Resolve(instr.a, scratch, key, 0, 0, 0, typed_stride);
          const float* b =
              instr.binary ? Resolve(instr.b, scratch, key, 0, 0, 0, typed_stride) : nullptr;
          EvalInstr(instr, scratch, a, b);
          if (instr.mat == MatKind::kKeyRow) {
            std::memcpy(instr.mat_base + key * instr.width, scratch + instr.out_reg,
                        static_cast<size_t>(instr.width) * sizeof(float));
          }
        }
      }
    });

    if (ProfileEvent* event = unit_span.event()) {
      int64_t edges = 0;
      for (const WorkerEdgeCount& count : edge_counts) {
        edges += count.edges;
      }
      event->edges = edges;
      event->fat_groups = num_vertices;
      event->fat_group_size = geometry.group_size;
      event->num_blocks = geometry.num_blocks;
      event->block_size = geometry.block_size;
      event->dispatches = launch_stats.dispatches;
      event->schedule = BlockScheduleName(options_.schedule);
      event->kernel_launches = 1;
      for (int32_t id : fused.nodes) {
        if (!plan.materialized[static_cast<size_t>(id)]) {
          continue;
        }
        const Node& node = gir.node(id);
        const int64_t rows = node.kind == OpKind::kAggTypedToSrc
                                 ? static_cast<int64_t>(num_types) * num_vertices
                                 : (node.type == GraphType::kEdge ? num_edges : num_vertices);
        event->bytes_materialized += rows * node.width * static_cast<int64_t>(sizeof(float));
      }
    }
  }

  if (ProfileEvent* event = run_span.event()) {
    event->kernel_launches = static_cast<int64_t>(plan.units.size());
    event->alloc_delta_bytes = static_cast<int64_t>(allocator.live_bytes()) -
                               static_cast<int64_t>(run_live_before);
    event->peak_delta_bytes = static_cast<int64_t>(allocator.peak_bytes()) -
                              static_cast<int64_t>(run_peak_before);
    event->plan_cache_hits = plan_hit ? 1 : 0;
    event->plan_cache_misses = plan_hit ? 0 : 1;
    event->pool_hits = static_cast<int64_t>(allocator.pool_hits() - run_pool_hits_before);
    event->pool_misses =
        static_cast<int64_t>(allocator.fresh_mallocs() - run_fresh_mallocs_before);
  }

  RunResult result;
  result.saved = saved;
  for (size_t i = 0; i < gir.outputs().size(); ++i) {
    const int32_t id = gir.outputs()[i];
    auto it = saved->find(id);
    if (it != saved->end()) {
      result.outputs[gir.output_names()[i]] = it->second;
      continue;
    }
    // An output may be a leaf itself, e.g. a backward GIR whose input
    // gradient is exactly the incoming output gradient (identity adjoint).
    auto leaf_it = leaf_value.find(id);
    SEASTAR_CHECK(leaf_it != leaf_value.end()) << "output %" << id << " was not materialized";
    result.outputs[gir.output_names()[i]] = leaf_it->second;
  }
  return result;
}

}  // namespace seastar
