#include "src/exec/seastar_executor.h"

#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/exec/kernel_counter.h"
#include "src/exec/pointwise.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

// Where an operand's bytes come from at kernel time.
enum class Src : uint8_t {
  kReg,        // Scratch register of the current FAT group.
  kKeyRow,     // base + key_vertex * width (key-side vertex tensor).
  kNbrRow,     // base + nbr_vertex * width.
  kEdgeRow,    // base + edge_id * width.
  kTypedRow,   // base + (edge_type * num_vertices + nbr_vertex) * width.
  kScalar,     // Immediate.
};

struct Operand {
  Src src = Src::kScalar;
  int32_t reg = 0;
  const float* base = nullptr;
  int32_t width = 1;
  float scalar = 0.0f;
};

// Where a computed value is written (if materialized).
enum class MatKind : uint8_t { kNone, kKeyRow, kNbrRow, kEdgeRow };

struct Instr {
  OpKind kind = OpKind::kIdentity;
  int32_t width = 1;
  float attr = 0.0f;
  Operand a;
  Operand b;
  bool binary = false;
  int32_t out_reg = 0;
  MatKind mat = MatKind::kNone;
  float* mat_base = nullptr;
};

struct AggInstr {
  OpKind kind = OpKind::kAggSum;
  int32_t width = 1;
  Operand input;
  int32_t acc_reg = 0;    // Outer accumulator.
  int32_t inner_reg = 0;  // Inner (per-type) accumulator for typed aggs.
  // Materialization (aggregation results are key-side rows, except
  // kAggTypedToSrc which writes a [num_types, N, width] stack).
  float* mat_base = nullptr;
  bool materialized = false;
  int64_t typed_rows = 0;  // = num_vertices for kAggTypedToSrc.
};

struct CompiledUnit {
  GraphType orientation = GraphType::kDst;
  bool needs_edge_loop = false;
  bool has_typed_agg = false;
  std::vector<Instr> invariant;  // Key-side pre ops (loop hoisted).
  std::vector<Instr> edge;       // Per-edge ops.
  std::vector<AggInstr> aggs;
  std::vector<Instr> post;       // Post-aggregation key-side ops.
  int32_t scratch_floats = 0;
  int32_t max_width = 1;
};

inline const float* Resolve(const Operand& op, const float* scratch, int64_t key, int64_t nbr,
                            int64_t eid, int32_t etype, int64_t typed_stride) {
  switch (op.src) {
    case Src::kReg:
      return scratch + op.reg;
    case Src::kKeyRow:
      return op.base + key * op.width;
    case Src::kNbrRow:
      return op.base + nbr * op.width;
    case Src::kEdgeRow:
      return op.base + eid * op.width;
    case Src::kTypedRow:
      return op.base + (static_cast<int64_t>(etype) * typed_stride + nbr) * op.width;
    case Src::kScalar:
      return &op.scalar;
  }
  return nullptr;
}

// Evaluates one pointwise instruction into scratch.
inline void EvalInstr(const Instr& instr, float* scratch, const float* a, const float* b) {
  PointwiseApply(instr.kind, instr.attr, scratch + instr.out_reg, instr.width, a, instr.a.width,
                 b, instr.b.width);
}

inline void AtomicStoreRow(float* dst, const float* src, int32_t width) {
  // Benign overwrite of identical values from concurrent FAT groups;
  // relaxed atomics keep it defined behaviour.
  for (int32_t j = 0; j < width; ++j) {
    std::atomic_ref<float>(dst[j]).store(src[j], std::memory_order_relaxed);
  }
}

// Trace label for a fused unit: "unit3:Mul+AggSum".
std::string UnitLabel(const GirGraph& gir, const FusedUnit& fused, size_t index) {
  std::string label = "unit" + std::to_string(index) + ":";
  for (size_t i = 0; i < fused.nodes.size(); ++i) {
    if (label.size() > 48) {
      label += "+…";
      break;
    }
    if (i > 0) {
      label += "+";
    }
    label += OpKindName(gir.node(fused.nodes[i]).kind);
  }
  return label;
}

// Per-worker hot-loop counter, cacheline-padded against false sharing.
struct alignas(64) WorkerEdgeCount {
  int64_t edges = 0;
};

}  // namespace

ExecutionPlan SeastarExecutor::Plan(const GirGraph& gir) const {
  FusionOptions fusion_options;
  fusion_options.enable_fusion = options_.enable_fusion;
  return BuildExecutionPlan(gir, fusion_options);
}

RunResult SeastarExecutor::Run(const GirGraph& gir, const Graph& graph,
                               const FeatureMap& features, const RunContext& ctx) const {
  // Hoisted once: with no (enabled) profiler installed every hook below is a
  // null-pointer test on the orchestration path only.
  Profiler* profiler =
      ctx.profiler != nullptr && ctx.profiler->enabled() ? ctx.profiler : nullptr;
  ProfileScope run_span(profiler, "seastar", "exec");
  const uint64_t run_live_before = TensorAllocator::Get().live_bytes();
  const uint64_t run_peak_before = TensorAllocator::Get().peak_bytes();

  const ExecutionPlan plan = Plan(gir);
  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();
  const int32_t num_types = graph.num_edge_types();

  // Degree tensors (width-1 vertex features) for kDegree leaves.
  Tensor in_degree({num_vertices, 1});
  Tensor out_degree({num_vertices, 1});
  bool degrees_ready = false;
  const auto ensure_degrees = [&] {
    if (degrees_ready) {
      return;
    }
    for (int64_t v = 0; v < num_vertices; ++v) {
      in_degree.at(v, 0) = static_cast<float>(graph.InDegree(static_cast<int32_t>(v)));
      out_degree.at(v, 0) = static_cast<float>(graph.OutDegree(static_cast<int32_t>(v)));
    }
    degrees_ready = true;
  };

  // Scalar values of P-typed nodes.
  std::vector<float> scalar_value(static_cast<size_t>(gir.num_nodes()), 0.0f);
  // Materialized tensors by node id.
  auto saved = std::make_shared<std::map<int32_t, Tensor>>();
  // Leaf bindings by node id (not owned by `saved` — they are caller inputs).
  std::map<int32_t, Tensor> leaf_value;

  // Evaluate scalars and bind leaves up front.
  for (const Node& node : gir.nodes()) {
    switch (node.kind) {
      case OpKind::kConst:
        scalar_value[static_cast<size_t>(node.id)] = node.attr;
        break;
      case OpKind::kInput: {
        if (node.type == GraphType::kEdge) {
          auto it = features.edge.find(node.name);
          SEASTAR_CHECK(it != features.edge.end()) << "missing edge feature '" << node.name << "'";
          SEASTAR_CHECK_EQ(it->second.dim(0), num_edges);
          SEASTAR_CHECK_EQ(it->second.dim(1), node.width);
          leaf_value[node.id] = it->second;
        } else {
          auto it = features.vertex.find(node.name);
          SEASTAR_CHECK(it != features.vertex.end())
              << "missing vertex feature '" << node.name << "'";
          SEASTAR_CHECK_EQ(it->second.dim(0), num_vertices);
          SEASTAR_CHECK_EQ(it->second.dim(1), node.width);
          leaf_value[node.id] = it->second;
        }
        break;
      }
      case OpKind::kInputTypedSrc: {
        auto it = features.typed_vertex.find(node.name);
        SEASTAR_CHECK(it != features.typed_vertex.end())
            << "missing typed feature '" << node.name << "'";
        SEASTAR_CHECK_EQ(it->second.ndim(), 3);
        SEASTAR_CHECK_EQ(it->second.dim(0), num_types);
        SEASTAR_CHECK_EQ(it->second.dim(1), num_vertices);
        SEASTAR_CHECK_EQ(it->second.dim(2), node.width);
        leaf_value[node.id] = it->second;
        break;
      }
      case OpKind::kDegree:
        ensure_degrees();
        break;
      default:
        if (node.type == GraphType::kParam) {
          // Scalar arithmetic on P values, evaluated host-side.
          const auto sv = [&](int32_t id) { return scalar_value[static_cast<size_t>(id)]; };
          float value = 0.0f;
          switch (node.kind) {
            case OpKind::kAdd:
              value = sv(node.inputs[0]) + sv(node.inputs[1]);
              break;
            case OpKind::kSub:
              value = sv(node.inputs[0]) - sv(node.inputs[1]);
              break;
            case OpKind::kMul:
              value = sv(node.inputs[0]) * sv(node.inputs[1]);
              break;
            case OpKind::kDiv:
              value = sv(node.inputs[0]) / sv(node.inputs[1]);
              break;
            case OpKind::kNeg:
              value = -sv(node.inputs[0]);
              break;
            case OpKind::kExp:
              value = std::exp(sv(node.inputs[0]));
              break;
            default:
              SEASTAR_LOG(Fatal) << "unsupported scalar op " << OpKindName(node.kind);
          }
          scalar_value[static_cast<size_t>(node.id)] = value;
        }
        break;
    }
  }

  // Allocate materialized tensors.
  for (int32_t id = 0; id < gir.num_nodes(); ++id) {
    if (!plan.materialized[static_cast<size_t>(id)]) {
      continue;
    }
    const Node& node = gir.node(id);
    Tensor tensor;
    if (node.kind == OpKind::kAggTypedToSrc) {
      tensor = Tensor::Zeros({num_types, num_vertices, node.width});
    } else if (node.type == GraphType::kEdge) {
      tensor = Tensor({num_edges, node.width});
    } else {
      tensor = Tensor({num_vertices, node.width});
    }
    (*saved)[id] = std::move(tensor);
  }

  const auto materialized_base = [&](int32_t id) -> float* {
    auto it = saved->find(id);
    return it == saved->end() ? nullptr : it->second.data();
  };

  // ---- Compile and run each unit ----------------------------------------------------------------
  for (size_t unit_index = 0; unit_index < plan.units.size(); ++unit_index) {
    const FusedUnit& fused = plan.units[unit_index];
    ProfileScope unit_span(
        profiler, profiler != nullptr ? UnitLabel(gir, fused, unit_index) : std::string(),
        "unit");
    AddKernelLaunches(1);
    CompiledUnit unit;
    unit.orientation = fused.orientation;
    unit.needs_edge_loop = fused.needs_edge_loop;

    const Csr& csr =
        unit.orientation == GraphType::kDst ? graph.in_csr() : graph.out_csr();

    // Register allocation.
    std::map<int32_t, int32_t> reg_of;
    int32_t cursor = 0;
    for (int32_t id : fused.nodes) {
      reg_of[id] = cursor;
      cursor += gir.node(id).width;
      unit.max_width = std::max(unit.max_width, gir.node(id).width);
    }

    const auto make_operand = [&](int32_t input_id) {
      Operand op;
      const Node& in = gir.node(input_id);
      op.width = in.width;
      auto reg_it = reg_of.find(input_id);
      if (reg_it != reg_of.end()) {
        op.src = Src::kReg;
        op.reg = reg_it->second;
        return op;
      }
      if (in.type == GraphType::kParam) {
        op.src = Src::kScalar;
        op.scalar = scalar_value[static_cast<size_t>(input_id)];
        return op;
      }
      if (in.kind == OpKind::kDegree) {
        op.src = in.type == unit.orientation ? Src::kKeyRow : Src::kNbrRow;
        op.base = in.type == GraphType::kDst ? in_degree.data() : out_degree.data();
        return op;
      }
      if (in.kind == OpKind::kInputTypedSrc) {
        op.src = Src::kTypedRow;
        op.base = leaf_value.at(input_id).data();
        return op;
      }
      // Leaf input or another unit's materialized value.
      const float* base = nullptr;
      auto leaf_it = leaf_value.find(input_id);
      if (leaf_it != leaf_value.end()) {
        base = leaf_it->second.data();
      } else {
        base = materialized_base(input_id);
        SEASTAR_CHECK(base != nullptr)
            << "node %" << input_id << " consumed across units but not materialized";
      }
      op.base = base;
      if (in.type == GraphType::kEdge) {
        op.src = Src::kEdgeRow;
      } else {
        op.src = in.type == unit.orientation ? Src::kKeyRow : Src::kNbrRow;
      }
      return op;
    };

    for (int32_t id : fused.nodes) {
      const Node& node = gir.node(id);
      if (IsAggregation(node.kind)) {
        AggInstr agg;
        agg.kind = node.kind;
        agg.width = node.width;
        agg.input = make_operand(node.inputs[0]);
        agg.acc_reg = reg_of.at(id);
        if (node.kind == OpKind::kAggTypeSumThenMax || node.kind == OpKind::kAggTypedToSrc) {
          agg.inner_reg = cursor;
          cursor += node.width;
          unit.has_typed_agg = true;
        }
        agg.materialized = plan.materialized[static_cast<size_t>(id)];
        agg.mat_base = materialized_base(id);
        agg.typed_rows = num_vertices;
        unit.aggs.push_back(agg);
        continue;
      }
      Instr instr;
      instr.kind = node.kind;
      instr.width = node.width;
      instr.attr = node.attr;
      instr.out_reg = reg_of.at(id);
      instr.a = make_operand(node.inputs[0]);
      if (node.inputs.size() > 1) {
        instr.b = make_operand(node.inputs[1]);
        instr.binary = true;
      }
      if (plan.materialized[static_cast<size_t>(id)]) {
        instr.mat_base = materialized_base(id);
        if (node.type == GraphType::kEdge) {
          instr.mat = MatKind::kEdgeRow;
        } else if (node.type == unit.orientation) {
          instr.mat = MatKind::kKeyRow;
        } else {
          instr.mat = MatKind::kNbrRow;
        }
      }
      const NodeStage stage = plan.stage[static_cast<size_t>(id)];
      if (stage == NodeStage::kPost) {
        unit.post.push_back(instr);
      } else if (node.type == unit.orientation || node.type == GraphType::kParam) {
        unit.invariant.push_back(instr);
      } else {
        unit.edge.push_back(instr);
      }
    }
    unit.scratch_floats = cursor;

    // ---- Launch -------------------------------------------------------------------------------
    const int64_t typed_stride = num_vertices;
    const FatGeometry geometry =
        FatGeometry::Compute(num_vertices, unit.max_width, options_.block_size);
    SimtLaunchStats launch_stats;
    SimtLaunchParams launch;
    launch.num_blocks = geometry.num_blocks;
    launch.schedule = options_.schedule;
    launch.chunk_size = options_.dynamic_chunk;
    launch.stats = profiler != nullptr ? &launch_stats : nullptr;

    const int num_workers = ThreadPool::Get().num_threads() + 1;
    std::vector<std::vector<float>> scratch_per_worker(
        static_cast<size_t>(num_workers),
        std::vector<float>(static_cast<size_t>(std::max(unit.scratch_floats, 1))));

    // Profiling-only per-worker traversal counters, merged after the launch
    // (never touched when profiling is off; one padded slot per worker so
    // the edge loop stays contention-free when it is on).
    std::vector<WorkerEdgeCount> edge_counts(
        profiler != nullptr ? static_cast<size_t>(num_workers) : 0);
    WorkerEdgeCount* edge_slots = edge_counts.empty() ? nullptr : edge_counts.data();

    LaunchBlocks(launch, [&](int64_t block_id, int worker) {
      float* scratch = scratch_per_worker[static_cast<size_t>(worker)].data();
      const int64_t first = geometry.FirstItemOfBlock(block_id);
      const int64_t last = std::min<int64_t>(first + geometry.groups_per_block, num_vertices);
      for (int64_t k = first; k < last; ++k) {
        const int64_t key = unit.needs_edge_loop || !csr.position_vertex.empty()
                                ? csr.position_vertex[static_cast<size_t>(k)]
                                : k;
        // 1. Loop-invariant key-side ops.
        for (const Instr& instr : unit.invariant) {
          const float* a = Resolve(instr.a, scratch, key, /*nbr=*/0, /*eid=*/0, 0, typed_stride);
          const float* b = instr.binary
                               ? Resolve(instr.b, scratch, key, 0, 0, 0, typed_stride)
                               : nullptr;
          EvalInstr(instr, scratch, a, b);
          if (instr.mat == MatKind::kKeyRow) {
            std::memcpy(instr.mat_base + key * instr.width, scratch + instr.out_reg,
                        static_cast<size_t>(instr.width) * sizeof(float));
          }
        }
        // 2. Aggregation initialization (Alg. 1 line 7).
        for (const AggInstr& agg : unit.aggs) {
          float* acc = scratch + agg.acc_reg;
          const float init =
              (agg.kind == OpKind::kAggMax || agg.kind == OpKind::kAggTypeSumThenMax) ? -FLT_MAX
                                                                                      : 0.0f;
          for (int32_t j = 0; j < agg.width; ++j) {
            acc[j] = init;
          }
          if (agg.inner_reg > 0 || agg.kind == OpKind::kAggTypeSumThenMax ||
              agg.kind == OpKind::kAggTypedToSrc) {
            float* inner = scratch + agg.inner_reg;
            for (int32_t j = 0; j < agg.width; ++j) {
              inner[j] = 0.0f;
            }
          }
        }

        const int64_t begin = unit.needs_edge_loop ? csr.offsets[static_cast<size_t>(k)] : 0;
        const int64_t end = unit.needs_edge_loop ? csr.offsets[static_cast<size_t>(k) + 1] : 0;
        const int64_t degree = end - begin;
        int32_t prev_type = -1;
        if (edge_slots != nullptr) {
          edge_slots[worker].edges += degree;
        }

        // 3. Edge-sequential loop (Alg. 1 lines 8-14).
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t nbr = csr.nbr_ids[static_cast<size_t>(slot)];
          const int64_t eid = csr.edge_ids[static_cast<size_t>(slot)];
          const int32_t etype =
              csr.edge_types.empty() ? 0 : csr.edge_types[static_cast<size_t>(slot)];

          // Edge-type boundary: flush two-level aggregations (§6.3.5).
          if (unit.has_typed_agg && etype != prev_type && prev_type >= 0) {
            for (const AggInstr& agg : unit.aggs) {
              float* inner = scratch + agg.inner_reg;
              float* acc = scratch + agg.acc_reg;
              if (agg.kind == OpKind::kAggTypeSumThenMax) {
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] = std::max(acc[j], inner[j]);
                  inner[j] = 0.0f;
                }
              } else if (agg.kind == OpKind::kAggTypedToSrc) {
                float* row = agg.mat_base +
                             (static_cast<int64_t>(prev_type) * agg.typed_rows + key) * agg.width;
                std::memcpy(row, inner, static_cast<size_t>(agg.width) * sizeof(float));
                for (int32_t j = 0; j < agg.width; ++j) {
                  inner[j] = 0.0f;
                }
              }
            }
          }
          prev_type = etype;

          for (const Instr& instr : unit.edge) {
            const float* a = Resolve(instr.a, scratch, key, nbr, eid, etype, typed_stride);
            const float* b =
                instr.binary ? Resolve(instr.b, scratch, key, nbr, eid, etype, typed_stride)
                             : nullptr;
            EvalInstr(instr, scratch, a, b);
            if (instr.mat == MatKind::kEdgeRow) {
              std::memcpy(instr.mat_base + eid * instr.width, scratch + instr.out_reg,
                          static_cast<size_t>(instr.width) * sizeof(float));
            } else if (instr.mat == MatKind::kNbrRow) {
              AtomicStoreRow(instr.mat_base + nbr * instr.width, scratch + instr.out_reg,
                             instr.width);
            }
          }
          for (const AggInstr& agg : unit.aggs) {
            const float* value =
                Resolve(agg.input, scratch, key, nbr, eid, etype, typed_stride);
            const int32_t wv = agg.input.width;
            switch (agg.kind) {
              case OpKind::kAggSum:
              case OpKind::kAggMean: {
                float* acc = scratch + agg.acc_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] += value[wv == 1 ? 0 : j];
                }
                break;
              }
              case OpKind::kAggMax: {
                float* acc = scratch + agg.acc_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  acc[j] = std::max(acc[j], value[wv == 1 ? 0 : j]);
                }
                break;
              }
              case OpKind::kAggTypeSumThenMax:
              case OpKind::kAggTypedToSrc: {
                float* inner = scratch + agg.inner_reg;
                for (int32_t j = 0; j < agg.width; ++j) {
                  inner[j] += value[wv == 1 ? 0 : j];
                }
                break;
              }
              default:
                break;
            }
          }
        }

        // 4. Aggregation output (Alg. 1 lines 15-16).
        for (const AggInstr& agg : unit.aggs) {
          float* acc = scratch + agg.acc_reg;
          if (unit.has_typed_agg && prev_type >= 0) {
            float* inner = scratch + agg.inner_reg;
            if (agg.kind == OpKind::kAggTypeSumThenMax) {
              for (int32_t j = 0; j < agg.width; ++j) {
                acc[j] = std::max(acc[j], inner[j]);
              }
            } else if (agg.kind == OpKind::kAggTypedToSrc) {
              float* row = agg.mat_base +
                           (static_cast<int64_t>(prev_type) * agg.typed_rows + key) * agg.width;
              std::memcpy(row, inner, static_cast<size_t>(agg.width) * sizeof(float));
            }
          }
          if (agg.kind == OpKind::kAggMean) {
            const float inv = degree > 0 ? 1.0f / static_cast<float>(degree) : 0.0f;
            for (int32_t j = 0; j < agg.width; ++j) {
              acc[j] *= inv;
            }
          }
          if ((agg.kind == OpKind::kAggMax || agg.kind == OpKind::kAggTypeSumThenMax) &&
              degree == 0) {
            for (int32_t j = 0; j < agg.width; ++j) {
              acc[j] = 0.0f;
            }
          }
          if (agg.materialized && agg.kind != OpKind::kAggTypedToSrc) {
            std::memcpy(agg.mat_base + key * agg.width, acc,
                        static_cast<size_t>(agg.width) * sizeof(float));
          }
        }
        // 5. Post-aggregation vertex ops (Alg. 1 line 17).
        for (const Instr& instr : unit.post) {
          const float* a = Resolve(instr.a, scratch, key, 0, 0, 0, typed_stride);
          const float* b =
              instr.binary ? Resolve(instr.b, scratch, key, 0, 0, 0, typed_stride) : nullptr;
          EvalInstr(instr, scratch, a, b);
          if (instr.mat == MatKind::kKeyRow) {
            std::memcpy(instr.mat_base + key * instr.width, scratch + instr.out_reg,
                        static_cast<size_t>(instr.width) * sizeof(float));
          }
        }
      }
    });

    if (ProfileEvent* event = unit_span.event()) {
      int64_t edges = 0;
      for (const WorkerEdgeCount& count : edge_counts) {
        edges += count.edges;
      }
      event->edges = edges;
      event->fat_groups = num_vertices;
      event->fat_group_size = geometry.group_size;
      event->num_blocks = geometry.num_blocks;
      event->block_size = geometry.block_size;
      event->dispatches = launch_stats.dispatches;
      event->schedule = BlockScheduleName(options_.schedule);
      event->kernel_launches = 1;
      for (int32_t id : fused.nodes) {
        if (!plan.materialized[static_cast<size_t>(id)]) {
          continue;
        }
        const Node& node = gir.node(id);
        const int64_t rows = node.kind == OpKind::kAggTypedToSrc
                                 ? static_cast<int64_t>(num_types) * num_vertices
                                 : (node.type == GraphType::kEdge ? num_edges : num_vertices);
        event->bytes_materialized += rows * node.width * static_cast<int64_t>(sizeof(float));
      }
    }
  }

  if (ProfileEvent* event = run_span.event()) {
    const TensorAllocator& allocator = TensorAllocator::Get();
    event->kernel_launches = static_cast<int64_t>(plan.units.size());
    event->alloc_delta_bytes = static_cast<int64_t>(allocator.live_bytes()) -
                               static_cast<int64_t>(run_live_before);
    event->peak_delta_bytes = static_cast<int64_t>(allocator.peak_bytes()) -
                              static_cast<int64_t>(run_peak_before);
  }

  RunResult result;
  result.saved = saved;
  for (size_t i = 0; i < gir.outputs().size(); ++i) {
    const int32_t id = gir.outputs()[i];
    auto it = saved->find(id);
    if (it != saved->end()) {
      result.outputs[gir.output_names()[i]] = it->second;
      continue;
    }
    // An output may be a leaf itself, e.g. a backward GIR whose input
    // gradient is exactly the incoming output gradient (identity adjoint).
    auto leaf_it = leaf_value.find(id);
    SEASTAR_CHECK(leaf_it != leaf_value.end()) << "output %" << id << " was not materialized";
    result.outputs[gir.output_names()[i]] = leaf_it->second;
  }
  return result;
}

}  // namespace seastar
