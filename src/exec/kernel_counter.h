// Process-global kernel-launch counter.
//
// On a GPU, every operator execution is a kernel launch with fixed overhead,
// and the paper's Table 3 contrast (fused/batched R-GCN vs per-relation
// sequential execution) is largely launch-bound. On this CPU simulation all
// strategies execute the same arithmetic, so the wall-clock contrast
// compresses; the launch counter preserves the mechanism: the Seastar
// executor counts one launch per fused execution unit, the baseline
// executors one per operator kernel (including gathers), and the benches
// report launches/epoch alongside time.
#ifndef SRC_EXEC_KERNEL_COUNTER_H_
#define SRC_EXEC_KERNEL_COUNTER_H_

#include <cstdint>

namespace seastar {

void AddKernelLaunches(int64_t count);
int64_t KernelLaunchCount();
void ResetKernelLaunchCount();

}  // namespace seastar

#endif  // SRC_EXEC_KERNEL_COUNTER_H_
