// Cache-blocked tiling plans for the fused aggregation kernels (FeatGraph-
// style, see PAPERS.md): the two-level scheme behind the tiled edge loops in
// src/exec/seastar_executor.cc.
//
//  * CSR segment blocking. Destination positions (degree-sorted CSR order)
//    are partitioned into contiguous segments sized so one segment's source-
//    feature working set — its edge count times one feature tile's bytes —
//    stays L2-resident across the segment's whole edge loop. Consecutive
//    destinations share sources (community structure, and degree sorting
//    clusters the hubs), so re-touched source rows hit cache instead of DRAM.
//  * Feature-dimension tiling. Wide feature rows are processed one column
//    tile at a time: the same edges are walked once per tile, but each pass
//    only touches tile_width columns of every source row, so the rows the
//    segment revisits fit in L1. For narrow features (width <= kMaxTileWidth)
//    there is exactly one tile and only segment blocking remains.
//
// A TilePlan is pure geometry — position boundaries plus a tile width. Any
// partition is *correct* (each destination's edge loop runs exactly once per
// tile, in slot order, and columns are independent), so the plan only shapes
// locality and parallel grain, never results. Plans are computed from the
// CSR's offset (degree) array at first use and memoized on the
// CompiledProgram alongside the FAT geometry (see compiled_program.h), which
// lives in the process-wide plan cache: steady-state epochs reuse the plan
// without re-deriving it.
//
// SEASTAR_TILING=0 in the environment (mirroring SEASTAR_POOL=0) forces the
// untiled edge loops — the escape hatch the tiled-vs-untiled parity tests
// and A/B benches are built on. Tiled and untiled paths share the SIMD row
// kernels (src/tensor/simd.h), so toggling changes loop partitioning only
// and outputs stay bit-identical.
#ifndef SRC_EXEC_TILING_H_
#define SRC_EXEC_TILING_H_

#include <cstdint>
#include <vector>

namespace seastar {

// Whether the tiled aggregation path is active. Reads SEASTAR_TILING from
// the environment once ("0" disables); tests and A/B benches override via
// SetTilingEnabled.
bool TilingEnabled();
void SetTilingEnabled(bool enabled);

struct TilePlan {
  // Columns per feature tile; always min(feature_width, kMaxTileWidth).
  int32_t tile_width = 0;
  // Number of feature tiles = ceil(feature_width / tile_width).
  int32_t num_tiles = 0;
  // Position-range boundaries: segment s covers CSR positions
  // [bounds[s], bounds[s+1]). Size num_segments() + 1; bounds[0] == 0 and
  // bounds.back() == num_vertices.
  std::vector<int64_t> bounds;

  int64_t num_segments() const { return static_cast<int64_t>(bounds.size()) - 1; }
};

struct TilePlanOptions {
  // Working-set budgets. Deliberately half of the typical 64 KiB L1d /
  // 1 MiB-ish L2 so destination rows, accumulators and the CSR index arrays
  // fit beside the source tiles.
  int64_t l1_budget_bytes = 32 * 1024;
  int64_t l2_budget_bytes = 512 * 1024;
  // Upper bound on tile width (floats). Every extra tile re-walks the
  // segment's CSR indices and re-enters the edge-loop kernel once more per
  // edge, so narrow tiles only pay when the row slice they save is large:
  // the kernel sweep (bench_kernels_micro --sweep-out=...) measured width-64
  // tiles at feature dim 256 losing ~30% to that re-walk while a single
  // 256-wide pass (1 KiB per source row, still a handful of cache lines)
  // matches or beats untiled. Multi-tile passes therefore engage only past
  // 256 columns.
  int32_t max_tile_width = 256;
  // Keep at least ~this many segments per worker so the segment launch still
  // load-balances across the pool (a tiny graph must not collapse to one
  // work item when several workers are idle).
  int64_t segments_per_worker = 4;
};

// Derives a plan from the CSR's offsets (the cached degree information):
// greedy contiguous packing of positions until a segment's edge working set
// (edges * tile_width * 4B) would exceed the L2 budget, its vertex count
// would exceed the balance cap, or the per-worker parallel grain would be
// lost. Every segment holds >= 1 position, so a single hub vertex whose
// working set alone exceeds the budget still forms a (correct) singleton
// segment.
TilePlan ComputeTilePlan(const std::vector<int64_t>& offsets, int64_t num_vertices,
                         int32_t feature_width, int num_workers,
                         const TilePlanOptions& options = {});

}  // namespace seastar

#endif  // SRC_EXEC_TILING_H_
