// The neighbor-access micro-benchmark of the paper (§6.3 / Fig. 12): for
// every vertex, sum the feature vectors of its in-neighbors. The five kernel
// strategies isolate the contribution of each Seastar design decision:
//
//   kDglBinarySearch     — the baseline: edge-parallel; every edge
//                          binary-searches the vertex-offset array for its
//                          destination and accumulates with atomics (DGL /
//                          minigun's strategy).
//   kBasic               — vertex-parallel edge-sequential, but one vertex
//                          per whole 256-lane block: lanes beyond the
//                          feature width run as masked no-ops, so small
//                          features waste almost the entire block (the GPU
//                          occupancy cliff, reproduced as wasted lane
//                          iterations on the host).
//   kFaUnsorted          — feature-adaptive groups (§6.3.1), vertices in
//                          original order.
//   kFaSortedAtomic      — FAT groups + degree sorting + the persistent-
//                          threads atomic counter (§6.3.3 "Dynamic
//                          scheduling", atomic variant).
//   kFaSortedDynamic     — FAT groups + degree sorting + hardware-order
//                          block scheduling (built-in block id).
//
// All strategies compute the identical output, asserted by tests.
#ifndef SRC_EXEC_NEIGHBOR_ACCESS_H_
#define SRC_EXEC_NEIGHBOR_ACCESS_H_

#include <string>

#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace seastar {

enum class NeighborAccessStrategy {
  kDglBinarySearch,
  kBasic,
  kFaUnsorted,
  kFaSortedAtomic,
  kFaSortedDynamic,
};

const char* NeighborAccessStrategyName(NeighborAccessStrategy strategy);

// Sums in-neighbor rows of `features` ([N, D]) into a fresh [N, D] tensor.
// `sorted_graph` must be built with sort_by_degree=true, `unsorted_graph`
// with false; strategies pick the one they are defined over.
Tensor RunNeighborAccess(NeighborAccessStrategy strategy, const Graph& sorted_graph,
                         const Graph& unsorted_graph, const Tensor& features,
                         int block_size = 256);

}  // namespace seastar

#endif  // SRC_EXEC_NEIGHBOR_ACCESS_H_
