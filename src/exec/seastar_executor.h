// The Seastar execution engine: runs a GIR as a sequence of fused execution
// units (paper §5.3, §6.3, Algorithm 1).
//
// Each fused unit is compiled to a small register program and executed with
// the exact loop structure of the paper's CUDA template:
//
//   for each FAT group (one key vertex, dispatched per §6.3.3):      | grid
//     evaluate loop-invariant (key-side) ops into registers          |
//     initialize aggregation accumulators                            |
//     for each incident edge slot (sequentially, §6.3.2):            | Alg. 1
//       resolve nbr/edge ids from the CSR                            |
//       evaluate edge-stage ops into registers                       |
//       accumulate aggregations in registers                         |
//     finalize aggregations; evaluate post-stage vertex ops          |
//     write materialized rows                                        |
//
// Vertex-parallel edge-sequential execution gives the locality-centric
// behaviour of §6.3.2 (destination rows loaded once, aggregation in
// registers, no atomics); degree sorting lives in the Graph's CSRs; the
// block-dispatch discipline (static / atomic / dynamic) is configurable for
// the §6.3.3 ablations. Only unit-crossing values are materialized
// (materialization planning) — everything else stays in registers, which is
// where the memory savings over the whole-graph tensor systems come from.
#ifndef SRC_EXEC_SEASTAR_EXECUTOR_H_
#define SRC_EXEC_SEASTAR_EXECUTOR_H_

#include "src/exec/executor.h"
#include "src/exec/runtime.h"
#include "src/gir/fusion.h"
#include "src/gir/ir.h"
#include "src/parallel/simt.h"

namespace seastar {

struct SeastarExecutorOptions {
  int block_size = 256;
  BlockSchedule schedule = BlockSchedule::kChunkedDynamic;
  int64_t dynamic_chunk = 16;
  // Off = the no-fusion ablation: one unit per op, all intermediates
  // materialized.
  bool enable_fusion = true;
};

class SeastarExecutor : public Executor {
 public:
  explicit SeastarExecutor(SeastarExecutorOptions options = {}) : options_(options) {}

  // Executor interface: full-graph runs delegate straight to Run().
  RunResult Execute(const GirGraph& gir, const GraphView& view, const FeatureMap& features,
                    const RunContext& ctx = {}) const override {
    return Run(gir, view.graph(), features, ctx);
  }
  const char* name() const override {
    return options_.enable_fusion ? "seastar" : "seastar-nofuse";
  }
  // Seastar recomputes intra-unit values in backward kernels (§6.3.4); only
  // unit-crossing values are ever materialized, and none are saved.
  bool saves_intermediates() const override { return false; }

  // Executes `gir` over `graph` with `features`. `ctx.seed` / `ctx.retain`
  // are accepted for interface parity with the baselines but ignored:
  // Seastar recomputes intra-unit values in backward kernels instead of
  // saving them (§6.3.4), and only materializes unit-crossing values in the
  // first place. `ctx.profiler`, when set, receives one span per fused unit
  // with the §6.3 kernel counters (FAT geometry, dispatch grants, edges
  // traversed, bytes materialized, allocator watermark deltas).
  RunResult Run(const GirGraph& gir, const Graph& graph, const FeatureMap& features,
                const RunContext& ctx = {}) const;

  ExecutionPlan Plan(const GirGraph& gir) const;

  const SeastarExecutorOptions& options() const { return options_; }

 private:
  SeastarExecutorOptions options_;
};

}  // namespace seastar

#endif  // SRC_EXEC_SEASTAR_EXECUTOR_H_
