#include "src/exec/executor.h"

#include <utility>

#include "src/common/logging.h"
#include "src/exec/plan_cache.h"

namespace seastar {

const Graph& GraphView::graph() const {
  SEASTAR_CHECK(graph_ != nullptr) << "GraphView: undefined view";
  return *graph_;
}

ExecutionSession::ExecutionSession(std::shared_ptr<const Executor> executor, GraphView view)
    : executor_(std::move(executor)), view_(std::move(view)) {
  SEASTAR_CHECK(executor_ != nullptr) << "ExecutionSession: null executor";
  SEASTAR_CHECK(view_.defined()) << "ExecutionSession: undefined graph view";
}

const Executor& ExecutionSession::executor() const {
  SEASTAR_CHECK(executor_ != nullptr) << "ExecutionSession: undefined session";
  return *executor_;
}

PlanCache& ExecutionSession::plan_cache() const { return PlanCache::Get(); }

RunContext ExecutionSession::MakeRunContext() const {
  RunContext ctx;
  ctx.profiler = profiler_;
  return ctx;
}

RunResult ExecutionSession::Execute(const GirGraph& gir, const FeatureMap& features,
                                    const RunContext& ctx) const {
  return executor().Execute(gir, view_, features, ctx);
}

RunResult ExecutionSession::Execute(const GirGraph& gir, const FeatureMap& features) const {
  return Execute(gir, features, MakeRunContext());
}

ExecutionSession MakeSession(std::shared_ptr<const Executor> executor, const Graph& graph) {
  SEASTAR_CHECK(executor != nullptr) << "MakeSession: null executor";
  GraphView view = executor->PrepareView(graph);
  return ExecutionSession(std::move(executor), std::move(view));
}

}  // namespace seastar
