#include "src/exec/executor.h"

#include <exception>
#include <utility>

#include "src/common/deadline.h"
#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/exec/plan_cache.h"

namespace seastar {
namespace {

struct RecoveryCounters {
  metrics::Counter* retries;
  metrics::Counter* recovery_fallbacks;
};

const RecoveryCounters& Counters() {
  static const RecoveryCounters counters = [] {
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
    RecoveryCounters c;
    c.retries = registry.GetCounter("seastar_shard_retries_total");
    c.recovery_fallbacks = registry.GetCounter("seastar_shard_recovery_fallbacks_total");
    return c;
  }();
  return counters;
}

}  // namespace

const Graph& GraphView::graph() const {
  SEASTAR_CHECK(graph_ != nullptr) << "GraphView: undefined view";
  return *graph_;
}

ExecutionSession::ExecutionSession(std::shared_ptr<const Executor> executor, GraphView view)
    : executor_(std::move(executor)), view_(std::move(view)) {
  SEASTAR_CHECK(executor_ != nullptr) << "ExecutionSession: null executor";
  SEASTAR_CHECK(view_.defined()) << "ExecutionSession: undefined graph view";
}

const Executor& ExecutionSession::executor() const {
  SEASTAR_CHECK(executor_ != nullptr) << "ExecutionSession: undefined session";
  return *executor_;
}

PlanCache& ExecutionSession::plan_cache() const { return PlanCache::Get(); }

RunContext ExecutionSession::MakeRunContext() const {
  RunContext ctx;
  ctx.profiler = profiler_;
  return ctx;
}

RunResult ExecutionSession::Execute(const GirGraph& gir, const FeatureMap& features,
                                    const RunContext& ctx) const {
  return ExecuteWithRecovery(executor(), view_, gir, features, ctx);
}

RunResult ExecuteWithRecovery(const Executor& executor, const GraphView& view,
                              const GirGraph& gir, const FeatureMap& features,
                              const RunContext& ctx) {
  const Executor* fallback = executor.recovery_fallback();
  if (fallback == nullptr) {
    return executor.Execute(gir, view, features, ctx);
  }
  try {
    return executor.Execute(gir, view, features, ctx);
  } catch (const DeadlineExceeded&) {
    throw;
  } catch (const std::exception& e) {
    Counters().retries->Add(1);
    FlightRecorder::Get().Record("shard", std::string("retry: ") + e.what());
    SEASTAR_LOG(Warning) << "transient " << executor.name()
                         << " failure, retrying once: " << e.what();
  }
  try {
    return executor.Execute(gir, view, features, ctx);
  } catch (const DeadlineExceeded&) {
    throw;
  } catch (const std::exception& e) {
    Counters().recovery_fallbacks->Add(1);
    FlightRecorder::Get().Record("shard", std::string("fallback: ") + e.what());
    SEASTAR_LOG(Warning) << executor.name() << " failed twice, falling back to "
                         << fallback->name() << " on the full graph: " << e.what();
    // The fallback strategy runs whole-graph: hand it a plain view so it
    // cannot trip over the failing shard decomposition.
    return fallback->Execute(gir, GraphView(view.graph()), features, ctx);
  }
}

RunResult ExecutionSession::Execute(const GirGraph& gir, const FeatureMap& features) const {
  return Execute(gir, features, MakeRunContext());
}

ExecutionSession MakeSession(std::shared_ptr<const Executor> executor, const Graph& graph) {
  SEASTAR_CHECK(executor != nullptr) << "MakeSession: null executor";
  GraphView view = executor->PrepareView(graph);
  return ExecutionSession(std::move(executor), std::move(view));
}

}  // namespace seastar
