#include "src/exec/compiled_program.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace seastar {
namespace {

// Trace label for a fused unit: "unit3:Mul+AggSum".
std::string UnitLabel(const GirGraph& gir, const FusedUnit& fused, size_t index) {
  std::string label = "unit" + std::to_string(index) + ":";
  for (size_t i = 0; i < fused.nodes.size(); ++i) {
    if (label.size() > 48) {
      label += "+…";
      break;
    }
    if (i > 0) {
      label += "+";
    }
    label += OpKindName(gir.node(fused.nodes[i]).kind);
  }
  return label;
}

}  // namespace

FatGeometry CompiledProgram::GeometryFor(size_t unit_index, int64_t num_items,
                                         int block_size) const {
  const GeometryKey key{unit_index, num_items, block_size};
  std::lock_guard<std::mutex> lock(geometry_mutex_);
  auto it = geometry_cache_.find(key);
  if (it == geometry_cache_.end()) {
    it = geometry_cache_
             .emplace(key, FatGeometry::Compute(num_items, units[unit_index].max_width,
                                                block_size))
             .first;
  }
  return it->second;
}

std::shared_ptr<const TilePlan> CompiledProgram::TilingFor(size_t unit_index, const Csr& csr,
                                                           int num_workers) const {
  const TilingKey key{unit_index, csr.num_vertices, csr.num_edges};
  std::lock_guard<std::mutex> lock(tiling_mutex_);
  auto it = tiling_cache_.find(key);
  if (it == tiling_cache_.end()) {
    const CompiledUnit& unit = units[unit_index];
    const int32_t width = unit.aggs.empty() ? unit.max_width : unit.aggs[0].width;
    it = tiling_cache_
             .emplace(key, std::make_shared<TilePlan>(ComputeTilePlan(
                               csr.offsets, csr.num_vertices, width, num_workers)))
             .first;
  }
  return it->second;
}

std::shared_ptr<CompiledProgram> CompileProgram(const GirGraph& gir,
                                                const FusionOptions& options) {
  auto result = std::make_shared<CompiledProgram>();
  CompiledProgram& program = *result;
  program.plan = BuildExecutionPlan(gir, options);
  const ExecutionPlan& plan = program.plan;

  // Host-side evaluation of P-typed scalars. These depend only on kConst
  // attrs (inputs of a P node are themselves P, in topological order), so
  // they are part of the compile artifact.
  program.scalar_value.assign(static_cast<size_t>(gir.num_nodes()), 0.0f);
  std::vector<float>& scalar_value = program.scalar_value;
  for (const Node& node : gir.nodes()) {
    if (node.kind == OpKind::kConst) {
      scalar_value[static_cast<size_t>(node.id)] = node.attr;
      continue;
    }
    if (node.type != GraphType::kParam || IsLeaf(node.kind)) {
      continue;
    }
    const auto sv = [&](int32_t id) { return scalar_value[static_cast<size_t>(id)]; };
    float value = 0.0f;
    switch (node.kind) {
      case OpKind::kAdd:
        value = sv(node.inputs[0]) + sv(node.inputs[1]);
        break;
      case OpKind::kSub:
        value = sv(node.inputs[0]) - sv(node.inputs[1]);
        break;
      case OpKind::kMul:
        value = sv(node.inputs[0]) * sv(node.inputs[1]);
        break;
      case OpKind::kDiv:
        value = sv(node.inputs[0]) / sv(node.inputs[1]);
        break;
      case OpKind::kNeg:
        value = -sv(node.inputs[0]);
        break;
      case OpKind::kExp:
        value = std::exp(sv(node.inputs[0]));
        break;
      default:
        SEASTAR_LOG(Fatal) << "unsupported scalar op " << OpKindName(node.kind);
    }
    scalar_value[static_cast<size_t>(node.id)] = value;
  }

  // Register-compile each fused unit into a pointer-free template.
  program.units.reserve(plan.units.size());
  program.unit_labels.reserve(plan.units.size());
  for (size_t unit_index = 0; unit_index < plan.units.size(); ++unit_index) {
    const FusedUnit& fused = plan.units[unit_index];
    program.unit_labels.push_back(UnitLabel(gir, fused, unit_index));

    CompiledUnit unit;
    unit.orientation = fused.orientation;
    unit.needs_edge_loop = fused.needs_edge_loop;

    // Register allocation.
    std::map<int32_t, int32_t> reg_of;
    int32_t cursor = 0;
    for (int32_t id : fused.nodes) {
      reg_of[id] = cursor;
      cursor += gir.node(id).width;
      unit.max_width = std::max(unit.max_width, gir.node(id).width);
    }

    const auto make_operand = [&](int32_t input_id) {
      Operand op;
      const Node& in = gir.node(input_id);
      op.width = in.width;
      auto reg_it = reg_of.find(input_id);
      if (reg_it != reg_of.end()) {
        op.src = Src::kReg;
        op.reg = reg_it->second;
        return op;
      }
      if (in.type == GraphType::kParam) {
        op.src = Src::kScalar;
        op.scalar = scalar_value[static_cast<size_t>(input_id)];
        return op;
      }
      // Everything else is backed by a per-run tensor (leaf feature, degree
      // tensor, or another unit's materialized value): record the node id,
      // the run patches the base pointer in.
      op.bind_node = input_id;
      if (in.kind == OpKind::kInputTypedSrc) {
        op.src = Src::kTypedRow;
      } else if (in.type == GraphType::kEdge) {
        op.src = Src::kEdgeRow;
      } else {
        op.src = in.type == unit.orientation ? Src::kKeyRow : Src::kNbrRow;
      }
      return op;
    };

    for (int32_t id : fused.nodes) {
      const Node& node = gir.node(id);
      if (IsAggregation(node.kind)) {
        AggInstr agg;
        agg.kind = node.kind;
        agg.width = node.width;
        agg.input = make_operand(node.inputs[0]);
        agg.acc_reg = reg_of.at(id);
        if (node.kind == OpKind::kAggTypeSumThenMax || node.kind == OpKind::kAggTypedToSrc) {
          agg.inner_reg = cursor;
          cursor += node.width;
          unit.has_typed_agg = true;
        }
        agg.materialized = plan.materialized[static_cast<size_t>(id)];
        if (agg.materialized) {
          agg.mat_node = id;
        }
        unit.aggs.push_back(agg);
        continue;
      }
      Instr instr;
      instr.kind = node.kind;
      instr.width = node.width;
      instr.attr = node.attr;
      instr.out_reg = reg_of.at(id);
      instr.a = make_operand(node.inputs[0]);
      if (node.inputs.size() > 1) {
        instr.b = make_operand(node.inputs[1]);
        instr.binary = true;
      }
      if (plan.materialized[static_cast<size_t>(id)]) {
        instr.mat_node = id;
        if (node.type == GraphType::kEdge) {
          instr.mat = MatKind::kEdgeRow;
        } else if (node.type == unit.orientation) {
          instr.mat = MatKind::kKeyRow;
        } else {
          instr.mat = MatKind::kNbrRow;
        }
      }
      const NodeStage stage = plan.stage[static_cast<size_t>(id)];
      if (stage == NodeStage::kPost) {
        unit.post.push_back(instr);
      } else if (node.type == unit.orientation || node.type == GraphType::kParam) {
        unit.invariant.push_back(instr);
      } else {
        unit.edge.push_back(instr);
      }
    }
    unit.scratch_floats = cursor;

    // Classify the edge loop (see FastPath in compiled_program.h). Typed
    // rows are excluded: their resolution needs the edge type, which the
    // specialized loops do not track.
    const auto plain_row = [](const Operand& op) {
      return op.src == Src::kKeyRow || op.src == Src::kNbrRow || op.src == Src::kEdgeRow ||
             op.src == Src::kScalar || op.src == Src::kReg;
    };
    if (!unit.has_typed_agg && unit.needs_edge_loop && unit.aggs.size() == 1) {
      const AggInstr& agg = unit.aggs[0];
      const bool sum_like = agg.kind == OpKind::kAggSum || agg.kind == OpKind::kAggMean;
      if (sum_like && unit.edge.empty() && agg.input.src != Src::kReg &&
          agg.input.src != Src::kTypedRow) {
        unit.fast_path = FastPath::kCopySum;
      } else if (sum_like && unit.edge.size() == 1) {
        const Instr& e = unit.edge[0];
        if (e.kind == OpKind::kMul && e.mat == MatKind::kNone && agg.input.src == Src::kReg &&
            agg.input.reg == e.out_reg && agg.input.width == agg.width &&
            plain_row(e.a) && plain_row(e.b)) {
          unit.fast_path = FastPath::kMulSum;
        }
      }
    }

    // Tilable: a fast-path unit whose per-vertex work is *only* the edge loop
    // plus the aggregation store — no invariant/post instructions whose
    // register values would have to survive across feature tiles — and whose
    // operands are plain rows (or full-row copies) so a column range [c0, c1)
    // of the accumulator depends only on the same column range (or the
    // width-1 broadcast) of the inputs.
    if (unit.fast_path != FastPath::kNone && unit.invariant.empty() && unit.post.empty() &&
        unit.aggs.size() == 1 && unit.aggs[0].materialized) {
      const AggInstr& agg = unit.aggs[0];
      if (unit.fast_path == FastPath::kCopySum) {
        unit.tilable = agg.input.width == agg.width || agg.input.width == 1;
      } else {
        const Instr& e = unit.edge[0];
        const auto concrete_row = [](const Operand& op) {
          return op.src == Src::kKeyRow || op.src == Src::kNbrRow || op.src == Src::kEdgeRow;
        };
        const int32_t w = agg.width;
        const bool widths_ok = (e.a.width == w && e.b.width == 1) ||
                               (e.a.width == 1 && e.b.width == w) ||
                               (e.a.width == w && e.b.width == w);
        unit.tilable = concrete_row(e.a) && concrete_row(e.b) && widths_ok;
      }
    }
    program.units.push_back(std::move(unit));
  }
  return result;
}

namespace {

void PatchOperand(Operand* op, const std::vector<float*>& node_base) {
  if (op->bind_node < 0) {
    return;
  }
  const float* base = node_base[static_cast<size_t>(op->bind_node)];
  SEASTAR_CHECK(base != nullptr)
      << "node %" << op->bind_node << " consumed across units but not materialized";
  op->base = base;
}

void PatchInstr(Instr* instr, const std::vector<float*>& node_base) {
  PatchOperand(&instr->a, node_base);
  if (instr->binary) {
    PatchOperand(&instr->b, node_base);
  }
  if (instr->mat_node >= 0) {
    instr->mat_base = node_base[static_cast<size_t>(instr->mat_node)];
    SEASTAR_CHECK(instr->mat_base != nullptr)
        << "materialization buffer for node %" << instr->mat_node << " missing";
  }
}

}  // namespace

void PatchUnit(CompiledUnit* unit, const std::vector<float*>& node_base, int64_t num_vertices) {
  for (Instr& instr : unit->invariant) {
    PatchInstr(&instr, node_base);
  }
  for (Instr& instr : unit->edge) {
    PatchInstr(&instr, node_base);
  }
  for (Instr& instr : unit->post) {
    PatchInstr(&instr, node_base);
  }
  for (AggInstr& agg : unit->aggs) {
    PatchOperand(&agg.input, node_base);
    agg.typed_rows = num_vertices;
    if (agg.mat_node >= 0) {
      agg.mat_base = node_base[static_cast<size_t>(agg.mat_node)];
      SEASTAR_CHECK(agg.mat_base != nullptr)
          << "materialization buffer for node %" << agg.mat_node << " missing";
    }
  }
}

}  // namespace seastar
