// The per-GIR compile artifact of the Seastar executor, split out of the
// executor so it can be cached across runs (see plan_cache.h).
//
// Compiling a GIR — fusion planning, register allocation, lowering every
// fused unit to a small register program — depends only on the GIR's content
// and the fusion options, never on the graph or the feature bindings. The
// CompiledProgram therefore stores *templates*: instructions whose operand
// base pointers are null and instead carry the GIR node id they should be
// bound to (`bind_node` / `mat_node`). Each run builds a per-run table of
// node id -> base pointer (leaf features, degree tensors, freshly allocated
// materialization tensors), copies the small instruction vectors, and patches
// the pointers in (PatchUnit). The hot kernel loop then runs on fully
// resolved pointers, exactly as it did when compilation happened per run.
//
// FAT geometry is cached here too, keyed by (unit, num_items, block_size):
// geometry depends only on those plus the unit's max feature width, so a
// graph change (different num_vertices) or option change (block_size) misses
// naturally and recomputes — no explicit invalidation hook needed.
#ifndef SRC_EXEC_COMPILED_PROGRAM_H_
#define SRC_EXEC_COMPILED_PROGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/exec/tiling.h"
#include "src/gir/fusion.h"
#include "src/gir/ir.h"
#include "src/graph/csr.h"
#include "src/parallel/simt.h"

namespace seastar {

// Where an operand's bytes come from at kernel time.
enum class Src : uint8_t {
  kReg,       // Scratch register of the current FAT group.
  kKeyRow,    // base + key_vertex * width (key-side vertex tensor).
  kNbrRow,    // base + nbr_vertex * width.
  kEdgeRow,   // base + edge_id * width.
  kTypedRow,  // base + (edge_type * num_vertices + nbr_vertex) * width.
  kScalar,    // Immediate.
};

struct Operand {
  Src src = Src::kScalar;
  int32_t reg = 0;
  const float* base = nullptr;  // Null in the cached template; patched per run.
  int32_t bind_node = -1;       // GIR node whose per-run base fills `base`.
  int32_t width = 1;
  float scalar = 0.0f;
};

// Where a computed value is written (if materialized).
enum class MatKind : uint8_t { kNone, kKeyRow, kNbrRow, kEdgeRow };

struct Instr {
  OpKind kind = OpKind::kIdentity;
  int32_t width = 1;
  float attr = 0.0f;
  Operand a;
  Operand b;
  bool binary = false;
  int32_t out_reg = 0;
  MatKind mat = MatKind::kNone;
  float* mat_base = nullptr;  // Null in the template; patched per run.
  int32_t mat_node = -1;
};

struct AggInstr {
  OpKind kind = OpKind::kAggSum;
  int32_t width = 1;
  Operand input;
  int32_t acc_reg = 0;    // Outer accumulator.
  int32_t inner_reg = 0;  // Inner (per-type) accumulator for typed aggs.
  // Materialization (aggregation results are key-side rows, except
  // kAggTypedToSrc which writes a [num_types, N, width] stack).
  float* mat_base = nullptr;  // Null in the template; patched per run.
  int32_t mat_node = -1;
  bool materialized = false;
  int64_t typed_rows = 0;  // = num_vertices for kAggTypedToSrc; set per run.
};

// Edge-loop specialization, classified once at compile time. The generic
// interpreter pays a dispatch cascade (operand Resolve + op switch + agg
// switch) per edge, which dominates at GNN feature widths; the two shapes
// every sum-style vertex program lowers to get fused inner loops instead:
//   kCopySum — no per-edge ops, one AggSum/AggMean pulling a row directly:
//              acc[j] += row[j]. (E.g. GCN backward, APPNP propagation.)
//   kMulSum  — one non-materialized Mul feeding one AggSum/AggMean:
//              acc[j] += a[j] * b[j] (with width-1 broadcast on either side).
//              (E.g. GCN forward, GAT's weighted aggregation.)
// Unit semantics are unchanged — only the loop body is specialized, and only
// when no typed aggregation / typed operand is involved.
enum class FastPath : uint8_t { kNone, kCopySum, kMulSum };

struct CompiledUnit {
  GraphType orientation = GraphType::kDst;
  bool needs_edge_loop = false;
  bool has_typed_agg = false;
  FastPath fast_path = FastPath::kNone;
  // True when the unit can run under the cache-blocked tiled scheme (see
  // tiling.h): a fast-path edge loop with no invariant/post instructions and
  // a single materialized sum/mean aggregation, so per-(segment, tile)
  // execution needs nothing but the agg accumulator. Classified once at
  // compile time; the executor additionally consults TilingEnabled().
  bool tilable = false;
  std::vector<Instr> invariant;  // Key-side pre ops (loop hoisted).
  std::vector<Instr> edge;       // Per-edge ops.
  std::vector<AggInstr> aggs;
  std::vector<Instr> post;       // Post-aggregation key-side ops.
  int32_t scratch_floats = 0;
  int32_t max_width = 1;
};

// Everything about a GIR that survives from one run to the next. Immutable
// after CompileProgram (the geometry cache is a mutable memo); shared across
// threads via shared_ptr<const CompiledProgram>.
class CompiledProgram {
 public:
  ExecutionPlan plan;
  std::vector<CompiledUnit> units;       // Templates (null base pointers).
  std::vector<std::string> unit_labels;  // "unit3:Mul+AggSum" trace labels.
  // Host-side values of P-typed nodes (constants and arithmetic on
  // constants), indexed by node id. P values cannot depend on features or the
  // graph, so they are fixed at compile time.
  std::vector<float> scalar_value;

  // FAT geometry for one unit, memoized per (num_items, block_size).
  FatGeometry GeometryFor(size_t unit_index, int64_t num_items, int block_size) const;

  // Cache-blocked tile plan for one unit over `csr`, memoized per
  // (unit, num_vertices, num_edges) — the same scheme as the FAT-geometry
  // memo, so a graph change misses naturally. The key deliberately does not
  // fingerprint the degree distribution: two distinct graphs with identical
  // (V, E) would share a plan, which can only cost locality, never
  // correctness (any position partition is exact — see tiling.h). Plans are
  // derived from the CSR's offset array (the cached degree data) on first
  // use; `num_workers` shapes the parallel grain of the first computation
  // and is not part of the key (pool size is fixed per process).
  std::shared_ptr<const TilePlan> TilingFor(size_t unit_index, const Csr& csr,
                                            int num_workers) const;

 private:
  struct GeometryKey {
    size_t unit;
    int64_t items;
    int block;
    bool operator<(const GeometryKey& o) const {
      if (unit != o.unit) return unit < o.unit;
      if (items != o.items) return items < o.items;
      return block < o.block;
    }
  };
  mutable std::mutex geometry_mutex_;
  mutable std::map<GeometryKey, FatGeometry> geometry_cache_;

  struct TilingKey {
    size_t unit;
    int64_t vertices;
    int64_t edges;
    bool operator<(const TilingKey& o) const {
      if (unit != o.unit) return unit < o.unit;
      if (vertices != o.vertices) return vertices < o.vertices;
      return edges < o.edges;
    }
  };
  mutable std::mutex tiling_mutex_;
  mutable std::map<TilingKey, std::shared_ptr<const TilePlan>> tiling_cache_;
};

// Plans (fusion + materialization) and register-compiles `gir`. Returned via
// shared_ptr because CompiledProgram owns a mutex (the geometry memo) and is
// therefore immovable.
std::shared_ptr<CompiledProgram> CompileProgram(const GirGraph& gir, const FusionOptions& options);

// Fills in the null base pointers of a per-run copy of a template unit.
// `node_base[id]` is the base pointer of node id's backing tensor this run
// (leaf binding, degree tensor, or materialization buffer); entries for
// register-resident nodes stay null and are never consulted.
void PatchUnit(CompiledUnit* unit, const std::vector<float*>& node_base, int64_t num_vertices);

}  // namespace seastar

#endif  // SRC_EXEC_COMPILED_PROGRAM_H_
