// Owner/mirror sharded execution runtime (ROADMAP item 1).
//
// ShardRuntime is an Executor that runs the *unchanged* fused Algorithm-1
// interpreter (SeastarExecutor) once per shard, on shard-local graphs
// produced by the Partitioner, stitched back together with an explicit
// halo-exchange protocol over bounded message queues:
//
//   1. Feature exchange (owner -> mirror). Each shard packs, per mirroring
//      peer, the owned rows of every vertex input the peer's halo needs and
//      pushes them into the peer's channel; each shard drains its channel
//      and scatters the received rows into the halo slots of its local
//      input tensors. Owned rows are a single contiguous copy (the
//      partition is a vertex-range partition).
//   2. Local run. The shard's SeastarExecutor runs the GIR on the local
//      graph on a dedicated thread-pool slice (ThreadPool::Current()), so
//      shards never contend on the shared process pool and each works a
//      cache-sized slice of the tensors.
//   3. Combine (mirror -> master). D-typed outputs are exact shard-locally
//      (every in-edge of an owned destination is local) and are written
//      straight into the owned rows of the global output; E-typed outputs
//      scatter through the local->global edge id map. S-typed (out-edge)
//      aggregation outputs are only *partial* — a source's out-edges span
//      shards — so each shard sends its halo rows' partial sums back to
//      their owners, and the owner combines: own partial first, then peer
//      messages in ascending shard id order. The fixed order makes the
//      float summation bit-reproducible run to run.
//
// Programs whose GIR reads an S-typed aggregate internally (a non-output
// consumer would observe a partial sum) or takes out-degrees cannot be
// sharded this way; Execute detects this (CheckShardable) and falls back to
// a single full-graph run on the inner executor, counted in
// seastar_shard_fallbacks_total.
#ifndef SRC_EXEC_SHARD_RUNTIME_H_
#define SRC_EXEC_SHARD_RUNTIME_H_

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/exec/seastar_executor.h"
#include "src/parallel/thread_pool.h"

namespace seastar {

// A transient failure inside one shard of a sharded execution — today only
// produced by the injected fault sites (shard_send/shard_recv/shard_combine/
// shard_worker), later by real partial failures (a lost remote worker). The
// recovery ladder (ExecuteWithRecovery in executor.cc) treats it like any
// other transient std::exception: retry sharded once, then fall back to the
// whole-graph interpreter. Deadline aborts are deliberately NOT a ShardFault.
class ShardFault : public std::runtime_error {
 public:
  ShardFault(FaultSite site, int shard_id)
      : std::runtime_error(std::string("injected shard fault at ") + FaultSiteName(site) +
                           " (shard " + std::to_string(shard_id) + ")"),
        site_(site),
        shard_id_(shard_id) {}

  FaultSite site() const { return site_; }
  int shard_id() const { return shard_id_; }

 private:
  FaultSite site_;
  int shard_id_;
};

struct ShardRuntimeOptions {
  int num_shards = 2;
  // Options for the per-shard inner interpreter runs.
  SeastarExecutorOptions seastar_options;
  // Give each shard worker a private pool slice sized so the total worker
  // count matches the process pool's. Off = shard workers run their kernels
  // single-threaded (each worker is still its own OS thread).
  bool use_pool_slices = true;
};

class ShardRuntime : public Executor {
 public:
  explicit ShardRuntime(ShardRuntimeOptions options = {});
  ~ShardRuntime() override;

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  // Partitions `graph` once; Execute reuses the decomposition through the
  // view. A view without a prepared partition (a caller that bypassed
  // MakeSession) is partitioned on the fly per call — correct but slow.
  GraphView PrepareView(const Graph& graph) const override;

  RunResult Execute(const GirGraph& gir, const GraphView& view, const FeatureMap& features,
                    const RunContext& ctx = {}) const override;

  const char* name() const override { return "sharded"; }
  bool saves_intermediates() const override { return false; }

  // The recovery ladder's last rung: the same whole-graph interpreter the
  // CheckShardable fallback path uses, run over the plain full graph.
  const Executor* recovery_fallback() const override { return &inner_; }

  const ShardRuntimeOptions& options() const { return options_; }

  // Why `gir` cannot run sharded (Ok = it can). Public so tests can pin the
  // shardability rules and callers can probe before choosing a strategy.
  static Status CheckShardable(const GirGraph& gir);

 private:
  RunResult ExecuteSharded(const GirGraph& gir, const Graph& graph,
                           const ShardedGraph& sharded, const FeatureMap& features) const;
  // Lazily builds the per-shard pool slices (first sharded Execute).
  ThreadPool* SlicePool(int shard) const;

  ShardRuntimeOptions options_;
  SeastarExecutor inner_;

  mutable std::mutex pools_mutex_;
  mutable std::vector<std::unique_ptr<ThreadPool>> slice_pools_;
};

}  // namespace seastar

#endif  // SRC_EXEC_SHARD_RUNTIME_H_
