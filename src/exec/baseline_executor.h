// Whole-graph tensor-centric baseline executors modelling DGL and PyG
// (paper §2.3, §6.3).
//
// Both execute a GIR operator-by-operator, materializing every node's value
// as a full tensor — vertex ops as [N, w], edge ops as [E, w] — and keep the
// value map alive in RunResult.saved (autograd's saved tensors), which is
// the memory behaviour Fig. 11 / Table 4 measure. They differ in kernel
// strategy:
//
//  * kDglLike — DGL 0.4 with minigun kernels: edge-wise operators iterate
//    CSR slots edge-parallel and *binary-search* the vertex-offset array to
//    recover the destination (the O(log N) per-edge cost §6.3 describes);
//    aggregations use atomic accumulation into destination rows; one
//    BinaryReduce fusion is applied — an aggregation whose input is an
//    E-typed binary op with a single consumer skips materializing that
//    operand (DGL's fused kernel for e.g. u_mul_e + sum).
//
//  * kPygLike — PyTorch-Geometric style gather/scatter: every S/D operand of
//    an edge operator is first *gathered* into its own [E, w] tensor (PyG's
//    x_j / x_i message inputs), ops run on materialized edge tensors, and
//    aggregations are scatter-adds over the COO index. No fusion at all;
//    peak memory is proportional to |E| * width.
#ifndef SRC_EXEC_BASELINE_EXECUTOR_H_
#define SRC_EXEC_BASELINE_EXECUTOR_H_

#include "src/exec/executor.h"
#include "src/exec/runtime.h"
#include "src/gir/ir.h"

namespace seastar {

enum class BaselineFlavor { kDglLike, kPygLike };

struct BaselineExecutorOptions {
  BaselineFlavor flavor = BaselineFlavor::kDglLike;
  // DGL's BinaryReduce fusion (ignored for kPygLike, which never fuses).
  bool fuse_binary_reduce = true;
};

class BaselineExecutor : public Executor {
 public:
  explicit BaselineExecutor(BaselineExecutorOptions options = {}) : options_(options) {}

  // Executor interface: full-graph runs delegate straight to Run().
  RunResult Execute(const GirGraph& gir, const GraphView& view, const FeatureMap& features,
                    const RunContext& ctx = {}) const override {
    return Run(gir, view.graph(), features, ctx);
  }
  const char* name() const override {
    return options_.flavor == BaselineFlavor::kDglLike ? "dgl" : "pyg";
  }
  // Both baselines keep every materialized intermediate alive in
  // RunResult.saved — the autograd saved-tensors behaviour Fig. 11 measures.
  bool saves_intermediates() const override { return true; }

  // `ctx.seed` maps node ids to already-known values (the forward
  // intermediates saved by a previous Run) — seeded nodes are not
  // recomputed, modelling autograd backward functions reading their saved
  // tensors.
  //
  // `ctx.retain` (optional) lists node ids whose values must survive the
  // run — the tensors autograd saves for backward. When given, every other
  // intermediate is freed as soon as its last consumer has executed, the way
  // a real tensor framework releases temporaries; when null, everything is
  // kept (useful for tests and for seeding).
  //
  // `ctx.profiler`, when set, receives one span per operator kernel with
  // edges traversed, bytes materialized, kernel-launch and allocator
  // watermark deltas — the whole-graph tensor-system counterpart of the
  // Seastar executor's per-unit spans.
  RunResult Run(const GirGraph& gir, const Graph& graph, const FeatureMap& features,
                const RunContext& ctx = {}) const;

  const BaselineExecutorOptions& options() const { return options_; }

 private:
  BaselineExecutorOptions options_;
};

}  // namespace seastar

#endif  // SRC_EXEC_BASELINE_EXECUTOR_H_
