// Shared runtime types for GIR executors.
#ifndef SRC_EXEC_RUNTIME_H_
#define SRC_EXEC_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace seastar {

// Runtime bindings for a GIR's kInput/kInputTypedSrc leaves.
//
// A vertex feature key (bound to a [num_vertices, width] tensor) may be read
// from either endpoint: an S-typed input reads row src(e), a D-typed input
// reads row dst(e) — both resolve against the same entry here, mirroring the
// paper's v_feature dictionary where u.h and v.h view one tensor.
struct FeatureMap {
  std::map<std::string, Tensor> vertex;  // [N, w]
  std::map<std::string, Tensor> edge;    // [E, w]
  // Edge-type-indexed stacks for kInputTypedSrc: shape [num_types, N, w].
  std::map<std::string, Tensor> typed_vertex;
};

struct RunResult {
  // Program outputs by output name. D/S outputs are [N, w]; E outputs are
  // [num_edges, w]; typed grads are [num_types, N, w].
  std::map<std::string, Tensor> outputs;
  // Values this run materialized, by node id. For the baseline executors
  // this holds *every* intermediate (they are whole-tensor systems); keeping
  // it alive between forward and backward models autograd's saved tensors
  // and is what the peak-memory benchmarks observe. The Seastar executor
  // only records unit-crossing values.
  std::shared_ptr<std::map<int32_t, Tensor>> saved;
};

// Values already known before a run (node id -> value). Used to seed the
// recompute copies inside a backward GIR from the forward pass's saved
// tensors in the baseline executors.
using SeedMap = std::map<int32_t, Tensor>;

class Profiler;

// Run-scoped execution context threaded through RunWithBackend, both
// executors and VertexProgram::Run. Replaces the old raw-pointer tail
// parameters (SeedMap*, retain vector) with one named carrier and adds the
// observability sink, so growing the execution API means adding a field
// here instead of another defaulted pointer at every call site.
struct RunContext {
  // Node values already known before the run; seeded nodes are not
  // recomputed (the baseline executors' autograd saved-tensor path). The
  // Seastar executor ignores this: it recomputes inside fused kernels.
  const SeedMap* seed = nullptr;

  // Node ids whose values must survive the run (what autograd retains for
  // backward). When set, baseline executors free every other intermediate as
  // soon as its last consumer has executed; when null everything is kept.
  // Ignored by the Seastar executor, which only materializes unit-crossing
  // values in the first place.
  const std::vector<int32_t>* retain = nullptr;

  // Observability sink (src/common/profiler.h). Null — the default — means
  // profiling is off and every hook reduces to a pointer test.
  Profiler* profiler = nullptr;
};

}  // namespace seastar

#endif  // SRC_EXEC_RUNTIME_H_
