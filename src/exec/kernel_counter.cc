#include "src/exec/kernel_counter.h"

#include <atomic>

namespace seastar {
namespace {
std::atomic<int64_t> g_kernel_launches{0};
}  // namespace

void AddKernelLaunches(int64_t count) {
  g_kernel_launches.fetch_add(count, std::memory_order_relaxed);
}

int64_t KernelLaunchCount() { return g_kernel_launches.load(std::memory_order_relaxed); }

void ResetKernelLaunchCount() { g_kernel_launches.store(0, std::memory_order_relaxed); }

}  // namespace seastar
