#include "src/exec/plan_cache.h"

#include "src/common/metrics.h"

namespace seastar {

PlanCache& PlanCache::Get() {
  static PlanCache* instance = new PlanCache();
  return *instance;
}

PlanCache::PlanCache() {
  // Exported by pull: the registry evaluates these at snapshot time, so the
  // GetOrCompile path pays only for the atomics it already maintained.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  registry.RegisterCallback("seastar_plan_cache_hits_total", metrics::CallbackKind::kCounter,
                            [this] { return static_cast<double>(hits()); });
  registry.RegisterCallback("seastar_plan_cache_misses_total", metrics::CallbackKind::kCounter,
                            [this] { return static_cast<double>(misses()); });
  registry.RegisterCallback("seastar_plan_cache_entries", metrics::CallbackKind::kGauge,
                            [this] { return static_cast<double>(size()); });
}

std::shared_ptr<const CompiledProgram> PlanCache::GetOrCompile(const GirGraph& gir,
                                                              const FusionOptions& options,
                                                              bool* cache_hit) {
  const std::pair<uint64_t, bool> key{gir.Fingerprint(), options.enable_fusion};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return it->second;
    }
  }
  // Compile outside the lock: compilation is the expensive part and two
  // threads racing on the same new GIR just do redundant work once.
  std::shared_ptr<const CompiledProgram> program = CompileProgram(gir, options);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) {
    entries_.clear();
  }
  auto [it, inserted] = entries_.emplace(key, std::move(program));
  return it->second;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace seastar
