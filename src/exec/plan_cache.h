// Process-wide cache of CompiledPrograms, keyed by GIR content fingerprint
// and the fusion options that shaped the plan.
//
// SeastarExecutor instances are throwaway (the backend constructs one per
// call), so the cache must outlive them: it is a singleton, like the tensor
// allocator. Keying by GirGraph::Fingerprint() rather than object identity
// means a VertexProgram's forward and backward GIRs are planned and
// register-compiled exactly once per process no matter how many epochs run,
// and a rebuilt-but-identical GIR still hits.
//
// Invalidation rules:
//   * options change  -> enable_fusion is part of the key; other executor
//     options (block size, schedule) do not affect compilation, only launch
//     geometry, which is memoized per (num_items, block_size) inside the
//     CompiledProgram and so misses naturally when they change.
//   * graph change    -> compilation never reads the graph; the per-graph
//     state (geometry, degree tensors) is keyed by graph properties and
//     cached on the Graph object itself.
//   * GIR change      -> different fingerprint, different entry.
// Clear() drops everything (tests use it to get deterministic miss counts).
#ifndef SRC_EXEC_PLAN_CACHE_H_
#define SRC_EXEC_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/exec/compiled_program.h"
#include "src/gir/fusion.h"
#include "src/gir/ir.h"

namespace seastar {

class PlanCache {
 public:
  static PlanCache& Get();

  // Returns the cached program for (gir fingerprint, options), compiling on
  // first sight. `cache_hit`, if non-null, reports whether this call was
  // served from the cache.
  std::shared_ptr<const CompiledProgram> GetOrCompile(const GirGraph& gir,
                                                      const FusionOptions& options,
                                                      bool* cache_hit = nullptr);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  void Clear();

 private:
  PlanCache();  // Registers pull-style metrics callbacks for the singleton.

  // A process runs a handful of distinct GIRs (a few per model layer); the
  // bound only guards against a pathological caller compiling unbounded
  // fresh GIRs. Eviction is wholesale — LRU bookkeeping is not worth it for
  // a cache that is effectively never full.
  static constexpr size_t kMaxEntries = 256;

  mutable std::mutex mutex_;
  std::map<std::pair<uint64_t, bool>, std::shared_ptr<const CompiledProgram>> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace seastar

#endif  // SRC_EXEC_PLAN_CACHE_H_
