// The unified execution entry point: every strategy that can run a GIR —
// the fused Seastar interpreter, the DGL/PyG-style whole-graph baselines,
// and the owner/mirror sharded runtime — implements `Executor`, and every
// caller (models, VertexProgram, the train loop, the serve path, benches,
// examples) reaches them through an `ExecutionSession`.
//
// This replaces the old free-function tail `RunWithBackend(config, graph,
// features, ctx)`: a free function over a bare Graph hard-codes the
// whole-graph single-address-space assumption, leaving no seam for
// executors that need per-graph prepared state (a shard partition, and
// later: ego-graph serving caches, per-tenant plan budgets). The session
// makes "which slice of the graph am I running on" a first-class value:
//
//   auto executor = ExecutorFactory::Create("sharded:4");            // core/
//   auto session = MakeSession(std::move(*executor), graph);  // partitions once
//   session.Execute(gir, features, ctx);                      // runs per shard
//
// A GraphView is the session's graph binding: the full graph, plus — when
// the executor prepared one — the shard decomposition (shard-local graphs
// with halo vertices). Sessions are cheap values (three pointers); the
// expensive per-graph state lives behind the view's shared_ptr and is built
// once in MakeSession/PrepareView.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <memory>

#include "src/exec/runtime.h"
#include "src/gir/ir.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"

namespace seastar {

class PlanCache;

// A graph as an executor sees it: always the full graph (output tensors are
// globally indexed regardless of strategy), optionally decorated with the
// owner/mirror shard decomposition prepared by ShardRuntime::PrepareView.
// Copies share the decomposition.
class GraphView {
 public:
  GraphView() = default;
  explicit GraphView(const Graph& graph) : graph_(&graph) {}
  GraphView(const Graph& graph, std::shared_ptr<const ShardedGraph> sharded)
      : graph_(&graph), sharded_(std::move(sharded)) {}

  bool defined() const { return graph_ != nullptr; }
  const Graph& graph() const;

  // Null for full-graph views.
  const std::shared_ptr<const ShardedGraph>& sharded() const { return sharded_; }

 private:
  const Graph* graph_ = nullptr;
  std::shared_ptr<const ShardedGraph> sharded_;
};

// An execution strategy for GIR programs. Implementations must be safe to
// share across sessions and calls (they hold options, not per-run state).
class Executor {
 public:
  virtual ~Executor() = default;

  // Runs `gir` over the view's graph with `features`, returning globally
  // indexed outputs. `ctx` carries the per-run state (seed, retain,
  // profiler) exactly as RunContext documents.
  virtual RunResult Execute(const GirGraph& gir, const GraphView& view,
                            const FeatureMap& features, const RunContext& ctx = {}) const = 0;

  // Builds the per-graph state this executor wants to reuse across runs.
  // The default is a plain full-graph view; the shard runtime overrides it
  // to partition the graph once per session instead of once per run.
  virtual GraphView PrepareView(const Graph& graph) const { return GraphView(graph); }

  // Stable lowercase identifier ("seastar", "dgl", "sharded", ...).
  virtual const char* name() const = 0;

  // True when Execute materializes every intermediate and returns it in
  // RunResult.saved (the whole-graph tensor baselines) — the autograd bridge
  // then keeps the saved map alive for backward instead of recomputing.
  virtual bool saves_intermediates() const = 0;

  // Non-null when this executor has a slower-but-safe strategy for the same
  // program after a transient failure: the shard runtime returns its inner
  // whole-graph interpreter. Executors returning null opt out of the
  // recovery ladder entirely — their failures propagate on the first throw
  // exactly as before (the training health monitor and the serving retry
  // loop own those policies). The pointer must stay valid as long as the
  // executor itself.
  virtual const Executor* recovery_fallback() const { return nullptr; }
};

// Runs `gir` through `executor` under the recovery ladder (docs/INTERNALS.md
// §14). Executors without a recovery_fallback() run exactly as a plain
// Execute call. For the rest: a DeadlineExceeded propagates unchanged (the
// caller's time budget is spent either way, and retrying would double-bill
// it); any other failure retries the same executor once (transient shard
// faults are consumed by the failed attempt, so the retry is bit-identical
// to an uninjected run); a second failure runs the fallback executor over
// the plain full-graph view. Counts seastar_shard_retries_total /
// seastar_shard_recovery_fallbacks_total and emits "shard" flight-recorder
// events, so callers above (train loop, Server) see at most one error for a
// persistent fault and none for a transient one.
RunResult ExecuteWithRecovery(const Executor& executor, const GraphView& view,
                              const GirGraph& gir, const FeatureMap& features,
                              const RunContext& ctx);

// One caller's binding of (executor, graph view, observability). What the
// old (config, graph, features, ctx) parameter tail collapses into: models
// hold one session per bound graph, the serve path one per request graph,
// and VertexProgram::Run takes the session as its single execution
// parameter. Copying a session is three pointer copies; the executor is
// shared, the profiler is borrowed (callers own its lifetime, as with
// RunContext::profiler before).
class ExecutionSession {
 public:
  ExecutionSession() = default;
  ExecutionSession(std::shared_ptr<const Executor> executor, GraphView view);

  bool defined() const { return executor_ != nullptr && view_.defined(); }
  const Executor& executor() const;
  const std::shared_ptr<const Executor>& executor_ptr() const { return executor_; }
  const GraphView& view() const { return view_; }
  const Graph& graph() const { return view_.graph(); }

  // The plan-cache handle this session's runs compile through. One process
  // cache today; a per-tenant handle later changes this accessor, not the
  // call sites.
  PlanCache& plan_cache() const;

  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  // The session's baseline run context (currently: the profiler binding).
  RunContext MakeRunContext() const;

  // Runs through the session's executor. `ctx` overrides MakeRunContext()
  // for callers that thread seed/retain state (the autograd bridge).
  RunResult Execute(const GirGraph& gir, const FeatureMap& features,
                    const RunContext& ctx) const;
  RunResult Execute(const GirGraph& gir, const FeatureMap& features) const;

 private:
  std::shared_ptr<const Executor> executor_;
  GraphView view_;
  Profiler* profiler_ = nullptr;
};

// Binds `executor` to `graph`, running the executor's per-graph preparation
// (for the shard runtime: the partition) exactly once.
ExecutionSession MakeSession(std::shared_ptr<const Executor> executor, const Graph& graph);

}  // namespace seastar

#endif  // SRC_EXEC_EXECUTOR_H_
