// Scalar/vector evaluation of pointwise GIR ops, shared by the fused-kernel
// interpreter and the baseline executors so all backends compute identical
// arithmetic (differences between systems must come from strategy, not math).
#ifndef SRC_EXEC_POINTWISE_H_
#define SRC_EXEC_POINTWISE_H_

#include <cmath>

#include "src/common/logging.h"
#include "src/gir/ir.h"

namespace seastar {

// Applies a binary op with the broadcast pattern hoisted out of the element
// loop: each variant is a tight loop over constant-stride operands the
// compiler can autovectorize, instead of a per-element `wa == 1 ? 0 : j`
// select. Semantics identical to the indexed form for every width mix.
template <typename F>
inline void BinaryBroadcastLoop(float* out, int32_t w, const float* a, int32_t wa, const float* b,
                                int32_t wb, F f) {
  if (wa == w && wb == 1) {
    const float s = b[0];
    for (int32_t j = 0; j < w; ++j) {
      out[j] = f(a[j], s);
    }
  } else if (wa == 1 && wb == w) {
    const float s = a[0];
    for (int32_t j = 0; j < w; ++j) {
      out[j] = f(s, b[j]);
    }
  } else if (wa == w && wb == w) {
    for (int32_t j = 0; j < w; ++j) {
      out[j] = f(a[j], b[j]);
    }
  } else {
    for (int32_t j = 0; j < w; ++j) {
      out[j] = f(a[wa == 1 ? 0 : j], b[wb == 1 ? 0 : j]);
    }
  }
}

// out[0..w) = op(a, b) with width-1 broadcast on either operand. For
// kDotProduct / kReduceWidthSum, w is the *input* width and out has width 1.
inline void PointwiseApply(OpKind kind, float attr, float* out, int32_t w, const float* a,
                           int32_t wa, const float* b, int32_t wb) {
  switch (kind) {
    case OpKind::kAdd:
      BinaryBroadcastLoop(out, w, a, wa, b, wb, [](float x, float y) { return x + y; });
      return;
    case OpKind::kSub:
      BinaryBroadcastLoop(out, w, a, wa, b, wb, [](float x, float y) { return x - y; });
      return;
    case OpKind::kMul:
      BinaryBroadcastLoop(out, w, a, wa, b, wb, [](float x, float y) { return x * y; });
      return;
    case OpKind::kDiv:
      BinaryBroadcastLoop(out, w, a, wa, b, wb, [](float x, float y) { return x / y; });
      return;
    case OpKind::kDotProduct: {
      float acc = 0.0f;
      for (int32_t j = 0; j < wa; ++j) {
        acc += a[j] * b[wb == 1 ? 0 : j];
      }
      out[0] = acc;
      return;
    }
    case OpKind::kEqualMask:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = a[wa == 1 ? 0 : j] == b[wb == 1 ? 0 : j] ? 1.0f : 0.0f;
      }
      return;
    case OpKind::kReduceWidthSum: {
      float acc = 0.0f;
      for (int32_t j = 0; j < wa; ++j) {
        acc += a[j];
      }
      out[0] = acc;
      return;
    }
    case OpKind::kNeg:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = -a[j];
      }
      return;
    case OpKind::kExp:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = std::exp(a[j]);
      }
      return;
    case OpKind::kLog:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = std::log(a[j]);
      }
      return;
    case OpKind::kRelu:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = a[j] > 0.0f ? a[j] : 0.0f;
      }
      return;
    case OpKind::kLeakyRelu:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = a[j] > 0.0f ? a[j] : attr * a[j];
      }
      return;
    case OpKind::kSigmoid:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = 1.0f / (1.0f + std::exp(-a[j]));
      }
      return;
    case OpKind::kTanh:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = std::tanh(a[j]);
      }
      return;
    case OpKind::kIdentity:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = a[wa == 1 ? 0 : j];
      }
      return;
    case OpKind::kReluGrad:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = b[wb == 1 ? 0 : j] > 0.0f ? a[wa == 1 ? 0 : j] : 0.0f;
      }
      return;
    case OpKind::kLeakyReluGrad:
      for (int32_t j = 0; j < w; ++j) {
        out[j] = b[wb == 1 ? 0 : j] > 0.0f ? a[wa == 1 ? 0 : j] : attr * a[wa == 1 ? 0 : j];
      }
      return;
    case OpKind::kSigmoidGrad:
      for (int32_t j = 0; j < w; ++j) {
        const float y = b[wb == 1 ? 0 : j];
        out[j] = a[wa == 1 ? 0 : j] * y * (1.0f - y);
      }
      return;
    case OpKind::kTanhGrad:
      for (int32_t j = 0; j < w; ++j) {
        const float y = b[wb == 1 ? 0 : j];
        out[j] = a[wa == 1 ? 0 : j] * (1.0f - y * y);
      }
      return;
    default:
      SEASTAR_LOG(Fatal) << "not a pointwise op: " << OpKindName(kind);
  }
}

}  // namespace seastar

#endif  // SRC_EXEC_POINTWISE_H_
