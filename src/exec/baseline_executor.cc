#include "src/exec/baseline_executor.h"

#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <functional>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/exec/kernel_counter.h"
#include "src/exec/pointwise.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

inline void AtomicAdd(float* target, float value) {
  std::atomic_ref<float> ref(*target);
  float current = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(current, current + value, std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(float* target, float value) {
  std::atomic_ref<float> ref(*target);
  float current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

// Binary search over the CSR vertex-offset array to find the position whose
// slot range contains `slot` — exactly the per-edge destination lookup of
// DGL's minigun kernels (paper §6.3).
inline int64_t FindKeyPosition(const std::vector<int64_t>& offsets, int64_t slot) {
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(offsets.size()) - 2;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (offsets[static_cast<size_t>(mid)] <= slot) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// Per-node value accessor for edge-wise evaluation.
struct EdgeOperand {
  enum class Kind { kEdgeTensor, kSrcVertex, kDstVertex, kTypedSrc, kScalar } kind;
  const float* base = nullptr;
  int32_t width = 1;
  float scalar = 0.0f;
  int64_t typed_stride = 0;  // num_vertices for kTypedSrc.

  inline const float* At(int64_t eid, int64_t src, int64_t dst, int32_t etype) const {
    switch (kind) {
      case Kind::kEdgeTensor:
        return base + eid * width;
      case Kind::kSrcVertex:
        return base + src * width;
      case Kind::kDstVertex:
        return base + dst * width;
      case Kind::kTypedSrc:
        return base + (static_cast<int64_t>(etype) * typed_stride + src) * width;
      case Kind::kScalar:
        return &scalar;
    }
    return nullptr;
  }
};

}  // namespace

RunResult BaselineExecutor::Run(const GirGraph& gir, const Graph& graph,
                                const FeatureMap& features, const RunContext& ctx) const {
  const SeedMap* seed = ctx.seed;
  const std::vector<int32_t>* retain = ctx.retain;
  Profiler* profiler =
      ctx.profiler != nullptr && ctx.profiler->enabled() ? ctx.profiler : nullptr;
  ProfileScope run_span(profiler,
                        options_.flavor == BaselineFlavor::kDglLike ? "dgl" : "pyg", "exec");
  const uint64_t run_live_before = TensorAllocator::Get().live_bytes();
  const uint64_t run_peak_before = TensorAllocator::Get().peak_bytes();
  const int64_t run_launches_before = KernelLaunchCount();

  const int64_t num_vertices = graph.num_vertices();
  const int64_t num_edges = graph.num_edges();
  const int32_t num_types = graph.num_edge_types();
  const bool pyg = options_.flavor == BaselineFlavor::kPygLike;

  auto saved = std::make_shared<std::map<int32_t, Tensor>>();
  std::vector<float> scalar_value(static_cast<size_t>(gir.num_nodes()), 0.0f);
  std::vector<bool> is_scalar(static_cast<size_t>(gir.num_nodes()), false);

  const auto consumers = gir.BuildConsumerLists();

  // Eager temporary release (only when the caller tells us what autograd
  // retains): once a node's last consumer has run, its tensor — and any
  // gathered edge copy derived from it — is dropped from the live map.
  std::vector<int32_t> remaining_uses(static_cast<size_t>(gir.num_nodes()), 0);
  std::vector<bool> keep(static_cast<size_t>(gir.num_nodes()), retain == nullptr);
  if (retain != nullptr) {
    for (int32_t id = 0; id < gir.num_nodes(); ++id) {
      remaining_uses[static_cast<size_t>(id)] =
          static_cast<int32_t>(consumers[static_cast<size_t>(id)].size());
    }
    for (int32_t id : *retain) {
      if (id >= 0 && id < gir.num_nodes()) {
        keep[static_cast<size_t>(id)] = true;
      }
    }
    for (int32_t out : gir.outputs()) {
      keep[static_cast<size_t>(out)] = true;
    }
    for (const Node& node : gir.nodes()) {
      if (IsLeaf(node.kind)) {
        keep[static_cast<size_t>(node.id)] = true;  // Caller-owned inputs.
      }
    }
  }

  // Nodes skipped by BinaryReduce fusion (value never materialized).
  std::vector<bool> fused_away(static_cast<size_t>(gir.num_nodes()), false);
  if (!pyg && options_.fuse_binary_reduce) {
    for (const Node& node : gir.nodes()) {
      if ((node.kind == OpKind::kAggSum || node.kind == OpKind::kAggMean) &&
          node.type != GraphType::kParam) {
        const Node& input = gir.node(node.inputs[0]);
        const bool seeded = seed != nullptr && seed->count(input.id) > 0;
        if (IsElementwiseBinary(input.kind) &&
            (input.type == GraphType::kEdge || input.type == GraphType::kSrc) && !seeded &&
            consumers[static_cast<size_t>(input.id)].size() == 1 && !gir.IsOutput(input.id)) {
          // Its operands must themselves be plain tensors (not fused away).
          fused_away[static_cast<size_t>(input.id)] = true;
        }
      }
    }
  }

  const auto value_of = [&](int32_t id) -> const Tensor& {
    auto it = saved->find(id);
    SEASTAR_CHECK(it != saved->end()) << "value %" << id << " not computed";
    return it->second;
  };

  const auto make_edge_operand = [&](int32_t id) {
    EdgeOperand op;
    const Node& node = gir.node(id);
    op.width = node.width;
    if (is_scalar[static_cast<size_t>(id)]) {
      op.kind = EdgeOperand::Kind::kScalar;
      op.scalar = scalar_value[static_cast<size_t>(id)];
      return op;
    }
    const Tensor& tensor = value_of(id);
    op.base = tensor.data();
    if (node.kind == OpKind::kInputTypedSrc ||
        (node.kind == OpKind::kAggTypedToSrc)) {
      op.kind = EdgeOperand::Kind::kTypedSrc;
      op.typed_stride = num_vertices;
    } else if (node.type == GraphType::kEdge) {
      op.kind = EdgeOperand::Kind::kEdgeTensor;
    } else if (node.type == GraphType::kSrc) {
      op.kind = EdgeOperand::Kind::kSrcVertex;
    } else {
      op.kind = EdgeOperand::Kind::kDstVertex;
    }
    return op;
  };

  // PyG gathers S/D operands of edge-wise ops into [E, w] tensors first
  // (x_j / x_i). The gathered tensor is itself recorded in `saved`, so it
  // counts toward peak memory like any other PyG intermediate.
  std::map<int32_t, Tensor> gathered_cache;
  const auto pyg_gather = [&](int32_t id) -> EdgeOperand {
    const Node& node = gir.node(id);
    EdgeOperand op;
    op.width = node.width;
    auto it = gathered_cache.find(id);
    if (it == gathered_cache.end()) {
      Tensor edge_tensor({num_edges, node.width});
      const Tensor& source = value_of(id);
      const bool typed = node.kind == OpKind::kInputTypedSrc;
      const auto& src_ids = graph.edge_src();
      const auto& dst_ids = graph.edge_dst();
      const auto& type_ids = graph.edge_type();
      ParallelFor(num_edges, [&](int64_t begin, int64_t end) {
        for (int64_t e = begin; e < end; ++e) {
          const int64_t row =
              typed ? (static_cast<int64_t>(type_ids[static_cast<size_t>(e)]) * num_vertices +
                       src_ids[static_cast<size_t>(e)])
                    : (node.type == GraphType::kSrc
                           ? static_cast<int64_t>(src_ids[static_cast<size_t>(e)])
                           : static_cast<int64_t>(dst_ids[static_cast<size_t>(e)]));
          std::memcpy(edge_tensor.data() + e * node.width, source.data() + row * node.width,
                      static_cast<size_t>(node.width) * sizeof(float));
        }
      });
      AddKernelLaunches(1);  // The gather is its own kernel in PyG.
      it = gathered_cache.emplace(id, edge_tensor).first;
      (*saved)[-1000 - id] = edge_tensor;  // Account it as a live intermediate.
    }
    op.kind = EdgeOperand::Kind::kEdgeTensor;
    op.base = it->second.data();
    return op;
  };

  const auto edge_operand = [&](int32_t id) {
    const Node& node = gir.node(id);
    const bool vertex_indexed =
        node.type != GraphType::kEdge || node.kind == OpKind::kInputTypedSrc;
    if (pyg && !is_scalar[static_cast<size_t>(id)] && vertex_indexed) {
      return pyg_gather(id);
    }
    return make_edge_operand(id);
  };

  // Evaluates an edge-wise pointwise node into a [E, w] tensor.
  const auto eval_edge_pointwise = [&](const Node& node) {
    AddKernelLaunches(1);
    Tensor out({num_edges, node.width});
    EdgeOperand a = edge_operand(node.inputs[0]);
    EdgeOperand b;
    const bool binary = node.inputs.size() > 1;
    if (binary) {
      b = edge_operand(node.inputs[1]);
    }
    float* out_base = out.data();
    if (pyg) {
      // COO traversal: direct edge-id indexing, no search.
      const auto& src_ids = graph.edge_src();
      const auto& dst_ids = graph.edge_dst();
      const auto& type_ids = graph.edge_type();
      ParallelFor(num_edges, [&](int64_t begin, int64_t end) {
        for (int64_t e = begin; e < end; ++e) {
          const int64_t src = src_ids[static_cast<size_t>(e)];
          const int64_t dst = dst_ids[static_cast<size_t>(e)];
          const int32_t etype = type_ids.empty() ? 0 : type_ids[static_cast<size_t>(e)];
          PointwiseApply(node.kind, node.attr, out_base + e * node.width, node.width,
                         a.At(e, src, dst, etype), a.width,
                         binary ? b.At(e, src, dst, etype) : nullptr, b.width);
        }
      });
    } else {
      // DGL/minigun: edge-parallel over CSR slots; the destination is found
      // with a binary search per edge.
      const Csr& csr = graph.in_csr();
      ParallelFor(num_edges, [&](int64_t begin, int64_t end) {
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t position = FindKeyPosition(csr.offsets, slot);
          const int64_t dst = csr.position_vertex[static_cast<size_t>(position)];
          const int64_t src = csr.nbr_ids[static_cast<size_t>(slot)];
          const int64_t eid = csr.edge_ids[static_cast<size_t>(slot)];
          const int32_t etype =
              csr.edge_types.empty() ? 0 : csr.edge_types[static_cast<size_t>(slot)];
          PointwiseApply(node.kind, node.attr, out_base + eid * node.width, node.width,
                         a.At(eid, src, dst, etype), a.width,
                         binary ? b.At(eid, src, dst, etype) : nullptr, b.width);
        }
      });
    }
    return out;
  };

  // Aggregates an edge-evaluable operand onto `orientation` rows, returning
  // [N, w] (or [T, N, w] for typed). `op_a`/`op_b`/`fused_kind` implement
  // DGL's BinaryReduce: when fused_kind != kIdentity the per-edge value is
  // op(a, b) computed on the fly.
  const auto eval_aggregate = [&](const Node& node) {
    AddKernelLaunches(1);
    const GraphType orientation =
        node.kind == OpKind::kAggTypedToSrc
            ? GraphType::kSrc
            : (node.type == GraphType::kSrc ? GraphType::kSrc : GraphType::kDst);
    const bool typed_out = node.kind == OpKind::kAggTypedToSrc;

    const Node& input = gir.node(node.inputs[0]);
    OpKind fused_kind = OpKind::kIdentity;
    float fused_attr = 0.0f;
    EdgeOperand a;
    EdgeOperand b;
    bool binary = false;
    if (fused_away[static_cast<size_t>(input.id)]) {
      fused_kind = input.kind;
      fused_attr = input.attr;
      a = edge_operand(input.inputs[0]);
      b = edge_operand(input.inputs[1]);
      binary = true;
    } else {
      a = edge_operand(input.id);
    }

    Tensor out = typed_out ? Tensor::Zeros({num_types, num_vertices, node.width})
                           : Tensor::Zeros({num_vertices, node.width});
    if (node.kind == OpKind::kAggMax) {
      out.Fill(-FLT_MAX);
    }
    float* out_base = out.data();
    const int32_t w = node.width;

    const auto accumulate = [&](int64_t eid, int64_t src, int64_t dst, int32_t etype,
                                std::vector<float>& tmp) {
      const float* value;
      if (binary) {
        PointwiseApply(fused_kind, fused_attr, tmp.data(), w, a.At(eid, src, dst, etype), a.width,
                       b.At(eid, src, dst, etype), b.width);
        value = tmp.data();
      } else {
        value = a.At(eid, src, dst, etype);
      }
      float* row;
      if (typed_out) {
        row = out_base + (static_cast<int64_t>(etype) * num_vertices + src) * w;
      } else {
        row = out_base + (orientation == GraphType::kDst ? dst : src) * w;
      }
      const int32_t wv = binary ? w : a.width;
      if (node.kind == OpKind::kAggMax) {
        for (int32_t j = 0; j < w; ++j) {
          AtomicMax(&row[j], value[wv == 1 ? 0 : j]);
        }
      } else {
        for (int32_t j = 0; j < w; ++j) {
          AtomicAdd(&row[j], value[wv == 1 ? 0 : j]);
        }
      }
    };

    if (pyg) {
      const auto& src_ids = graph.edge_src();
      const auto& dst_ids = graph.edge_dst();
      const auto& type_ids = graph.edge_type();
      ParallelFor(num_edges, [&](int64_t begin, int64_t end) {
        std::vector<float> local(static_cast<size_t>(w));  // Fused-binary scratch.
        for (int64_t e = begin; e < end; ++e) {
          const int32_t etype = type_ids.empty() ? 0 : type_ids[static_cast<size_t>(e)];
          accumulate(e, src_ids[static_cast<size_t>(e)], dst_ids[static_cast<size_t>(e)], etype,
                     local);
        }
      });
    } else {
      const Csr& csr =
          orientation == GraphType::kDst ? graph.in_csr() : graph.out_csr();
      ParallelFor(num_edges, [&](int64_t begin, int64_t end) {
        std::vector<float> local(static_cast<size_t>(w));
        for (int64_t slot = begin; slot < end; ++slot) {
          const int64_t position = FindKeyPosition(csr.offsets, slot);
          const int64_t key = csr.position_vertex[static_cast<size_t>(position)];
          const int64_t nbr = csr.nbr_ids[static_cast<size_t>(slot)];
          const int64_t eid = csr.edge_ids[static_cast<size_t>(slot)];
          const int32_t etype =
              csr.edge_types.empty() ? 0 : csr.edge_types[static_cast<size_t>(slot)];
          const int64_t src = orientation == GraphType::kDst ? nbr : key;
          const int64_t dst = orientation == GraphType::kDst ? key : nbr;
          accumulate(eid, src, dst, etype, local);
        }
      });
    }

    // Finalization.
    if (node.kind == OpKind::kAggMean) {
      for (int64_t v = 0; v < num_vertices; ++v) {
        const int64_t deg = orientation == GraphType::kDst
                                ? graph.InDegree(static_cast<int32_t>(v))
                                : graph.OutDegree(static_cast<int32_t>(v));
        const float inv = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
        for (int32_t j = 0; j < w; ++j) {
          out_base[v * w + j] *= inv;
        }
      }
    }
    if (node.kind == OpKind::kAggMax) {
      for (int64_t v = 0; v < num_vertices; ++v) {
        const int64_t deg = orientation == GraphType::kDst
                                ? graph.InDegree(static_cast<int32_t>(v))
                                : graph.OutDegree(static_cast<int32_t>(v));
        if (deg == 0) {
          for (int32_t j = 0; j < w; ++j) {
            out_base[v * w + j] = 0.0f;
          }
        }
      }
    }
    return out;
  };

  // kAggTypeSumThenMax, whole-tensor style: per-type sums then max over
  // types (a tensor system computes this with a [T, N, w] temporary).
  const auto eval_type_sum_then_max = [&](const Node& node) {
    AddKernelLaunches(2);  // Scatter pass + reduce pass.
    const int32_t w = node.width;
    Tensor per_type = Tensor::Zeros({num_types, num_vertices, w});
    EdgeOperand a = edge_operand(node.inputs[0]);
    float* pt = per_type.data();
    const auto& src_ids = graph.edge_src();
    const auto& dst_ids = graph.edge_dst();
    const auto& type_ids = graph.edge_type();
    for (int64_t e = 0; e < num_edges; ++e) {
      const int64_t src = src_ids[static_cast<size_t>(e)];
      const int64_t dst = dst_ids[static_cast<size_t>(e)];
      const int32_t etype = type_ids.empty() ? 0 : type_ids[static_cast<size_t>(e)];
      const float* value = a.At(e, src, dst, etype);
      float* row = pt + (static_cast<int64_t>(etype) * num_vertices + dst) * w;
      for (int32_t j = 0; j < w; ++j) {
        row[j] += value[a.width == 1 ? 0 : j];
      }
    }
    (*saved)[-2000 - node.id] = per_type;  // The [T, N, w] temporary is real memory.
    Tensor out = Tensor::Zeros({num_vertices, w});
    // Vertices with no edges of a type should not see that type's zero sum
    // unless they have no edges at all; the paper's hierarchical scheme
    // aggregates only over present types. Track presence per (type, vertex).
    std::vector<uint8_t> present(static_cast<size_t>(num_types * num_vertices), 0);
    for (int64_t e = 0; e < num_edges; ++e) {
      const int32_t etype = type_ids.empty() ? 0 : type_ids[static_cast<size_t>(e)];
      present[static_cast<size_t>(etype * num_vertices + dst_ids[static_cast<size_t>(e)])] = 1;
    }
    for (int64_t v = 0; v < num_vertices; ++v) {
      bool any = false;
      for (int32_t t = 0; t < num_types; ++t) {
        if (!present[static_cast<size_t>(t) * static_cast<size_t>(num_vertices) +
                     static_cast<size_t>(v)]) {
          continue;
        }
        const float* row = pt + (static_cast<int64_t>(t) * num_vertices + v) * w;
        float* out_row = out.data() + v * w;
        if (!any) {
          std::memcpy(out_row, row, static_cast<size_t>(w) * sizeof(float));
          any = true;
        } else {
          for (int32_t j = 0; j < w; ++j) {
            out_row[j] = std::max(out_row[j], row[j]);
          }
        }
      }
    }
    return out;
  };

  // Frees tensors whose last consumer has executed (see `retain`).
  std::function<void(int32_t)> release_use = [&](int32_t id) {
    if (retain == nullptr) {
      return;
    }
    if (fused_away[static_cast<size_t>(id)]) {
      // The fused binary was consumed through its operands.
      for (int32_t input : gir.node(id).inputs) {
        release_use(input);
      }
      return;
    }
    if (--remaining_uses[static_cast<size_t>(id)] > 0 || keep[static_cast<size_t>(id)]) {
      return;
    }
    saved->erase(id);
    if (gathered_cache.erase(id) > 0) {
      saved->erase(-1000 - id);
    }
  };
  const auto release_inputs = [&](const Node& node) {
    for (int32_t input : node.inputs) {
      release_use(input);
    }
  };

  // ---- Main interpretation loop ------------------------------------------------------------------
  // One operator evaluation, factored out so the loop below can wrap it in a
  // profiler span without duplicating the dispatch.
  const auto exec_node = [&](const Node& node) {
    switch (node.kind) {
      case OpKind::kConst:
        scalar_value[static_cast<size_t>(node.id)] = node.attr;
        is_scalar[static_cast<size_t>(node.id)] = true;
        return;
      case OpKind::kInput: {
        if (node.type == GraphType::kEdge) {
          auto it = features.edge.find(node.name);
          SEASTAR_CHECK(it != features.edge.end()) << "missing edge feature '" << node.name << "'";
          (*saved)[node.id] = it->second;
        } else {
          auto it = features.vertex.find(node.name);
          SEASTAR_CHECK(it != features.vertex.end())
              << "missing vertex feature '" << node.name << "'";
          (*saved)[node.id] = it->second;
        }
        return;
      }
      case OpKind::kInputTypedSrc: {
        auto it = features.typed_vertex.find(node.name);
        SEASTAR_CHECK(it != features.typed_vertex.end())
            << "missing typed feature '" << node.name << "'";
        (*saved)[node.id] = it->second;
        return;
      }
      case OpKind::kDegree: {
        Tensor degree({num_vertices, 1});
        for (int64_t v = 0; v < num_vertices; ++v) {
          degree.at(v, 0) = static_cast<float>(node.type == GraphType::kDst
                                                   ? graph.InDegree(static_cast<int32_t>(v))
                                                   : graph.OutDegree(static_cast<int32_t>(v)));
        }
        (*saved)[node.id] = std::move(degree);
        return;
      }
      default:
        break;
    }

    if (node.type == GraphType::kParam) {
      const auto sv = [&](int32_t id) {
        SEASTAR_CHECK(is_scalar[static_cast<size_t>(id)]);
        return scalar_value[static_cast<size_t>(id)];
      };
      float value = 0.0f;
      switch (node.kind) {
        case OpKind::kAdd:
          value = sv(node.inputs[0]) + sv(node.inputs[1]);
          break;
        case OpKind::kSub:
          value = sv(node.inputs[0]) - sv(node.inputs[1]);
          break;
        case OpKind::kMul:
          value = sv(node.inputs[0]) * sv(node.inputs[1]);
          break;
        case OpKind::kDiv:
          value = sv(node.inputs[0]) / sv(node.inputs[1]);
          break;
        case OpKind::kNeg:
          value = -sv(node.inputs[0]);
          break;
        case OpKind::kExp:
          value = std::exp(sv(node.inputs[0]));
          break;
        default:
          SEASTAR_LOG(Fatal) << "unsupported scalar op " << OpKindName(node.kind);
      }
      scalar_value[static_cast<size_t>(node.id)] = value;
      is_scalar[static_cast<size_t>(node.id)] = true;
      return;
    }

    if (IsAggregation(node.kind)) {
      if (node.kind == OpKind::kAggTypeSumThenMax) {
        (*saved)[node.id] = eval_type_sum_then_max(node);
      } else {
        (*saved)[node.id] = eval_aggregate(node);
      }
      release_inputs(node);
      return;
    }

    if (node.type == GraphType::kEdge) {
      (*saved)[node.id] = eval_edge_pointwise(node);
      release_inputs(node);
      return;
    }

    // Vertex-wise pointwise op (S- or D-typed): plain tensor kernel.
    {
      AddKernelLaunches(1);
      const Node& in_a = gir.node(node.inputs[0]);
      const Tensor& ta = value_of(node.inputs[0]);
      const bool binary = node.inputs.size() > 1;
      const float* pb = nullptr;
      int32_t wb = 1;
      float scalar_b = 0.0f;
      int64_t stride_b = 0;
      if (binary) {
        if (is_scalar[static_cast<size_t>(node.inputs[1])]) {
          scalar_b = scalar_value[static_cast<size_t>(node.inputs[1])];
          pb = &scalar_b;
        } else {
          const Tensor& tb = value_of(node.inputs[1]);
          pb = tb.data();
          wb = gir.node(node.inputs[1]).width;
          stride_b = wb;
        }
      }
      const float* pa = ta.data();
      const int64_t stride_a = in_a.width;
      Tensor out({num_vertices, node.width});
      float* po = out.data();
      ParallelFor(num_vertices, [&](int64_t begin, int64_t end) {
        for (int64_t v = begin; v < end; ++v) {
          PointwiseApply(node.kind, node.attr, po + v * node.width, node.width,
                         pa + v * stride_a, in_a.width,
                         pb != nullptr ? pb + v * stride_b : nullptr, wb);
        }
      });
      (*saved)[node.id] = std::move(out);
      release_inputs(node);
    }
  };

  for (const Node& node : gir.nodes()) {
    // Per-op deadline poll, mirroring the Seastar executor's per-unit check.
    CheckExecutionDeadline("baseline op");
    if (seed != nullptr) {
      auto it = seed->find(node.id);
      if (it != seed->end()) {
        (*saved)[node.id] = it->second;
        continue;
      }
    }
    if (fused_away[static_cast<size_t>(node.id)]) {
      continue;
    }
    // Leaves and scalar params are bookkeeping, not kernels — keep them out
    // of the trace so per-op spans correspond to launched kernels.
    const bool is_kernel = node.kind != OpKind::kConst && node.kind != OpKind::kInput &&
                           node.kind != OpKind::kInputTypedSrc && node.type != GraphType::kParam;
    if (profiler == nullptr || !is_kernel) {
      exec_node(node);
      continue;
    }
    ProfileScope op_span(profiler, OpKindName(node.kind), "op");
    const uint64_t live_before = TensorAllocator::Get().live_bytes();
    const uint64_t peak_before = TensorAllocator::Get().peak_bytes();
    const int64_t launches_before = KernelLaunchCount();
    exec_node(node);
    if (ProfileEvent* event = op_span.event()) {
      // Edge-wise ops and aggregations are the graph-traversal kernels; the
      // rest are plain vertex/param tensor kernels.
      if (IsAggregation(node.kind) || node.type == GraphType::kEdge) {
        event->edges = num_edges;
      }
      auto out_it = saved->find(node.id);
      if (out_it != saved->end()) {
        event->bytes_materialized = static_cast<int64_t>(out_it->second.nbytes());
      }
      event->kernel_launches = KernelLaunchCount() - launches_before;
      event->alloc_delta_bytes = static_cast<int64_t>(TensorAllocator::Get().live_bytes()) -
                                 static_cast<int64_t>(live_before);
      event->peak_delta_bytes = static_cast<int64_t>(TensorAllocator::Get().peak_bytes()) -
                                static_cast<int64_t>(peak_before);
    }
  }

  RunResult result;
  result.saved = saved;
  for (size_t i = 0; i < gir.outputs().size(); ++i) {
    const int32_t id = gir.outputs()[i];
    result.outputs[gir.output_names()[i]] = value_of(id);
  }

  if (ProfileEvent* event = run_span.event()) {
    event->kernel_launches = KernelLaunchCount() - run_launches_before;
    event->alloc_delta_bytes = static_cast<int64_t>(TensorAllocator::Get().live_bytes()) -
                               static_cast<int64_t>(run_live_before);
    event->peak_delta_bytes = static_cast<int64_t>(TensorAllocator::Get().peak_bytes()) -
                              static_cast<int64_t>(run_peak_before);
  }
  return result;
}

}  // namespace seastar
