#include "src/exec/shard_runtime.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/tracing.h"
#include "src/parallel/channel.h"

namespace seastar {
namespace {

struct ShardCounters {
  metrics::Counter* runs;
  metrics::Counter* fallbacks;
  metrics::Counter* messages;
  metrics::Counter* bytes;
};

const ShardCounters& Counters() {
  static const ShardCounters counters = [] {
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
    ShardCounters c;
    c.runs = registry.GetCounter("seastar_shard_runs_total");
    c.fallbacks = registry.GetCounter("seastar_shard_fallbacks_total");
    c.messages = registry.GetCounter("seastar_shard_halo_messages_total");
    c.bytes = registry.GetCounter("seastar_shard_halo_bytes_total");
    return c;
  }();
  return counters;
}

// The S-typed aggregations whose shard partials combine by addition. An
// A:S sum decomposes exactly over any edge partition; max/mean do not.
bool IsAdditiveSourceAgg(OpKind kind) {
  return kind == OpKind::kAggSum || kind == OpKind::kAggMaxGrad ||
         kind == OpKind::kAggTypedToSrc;
}

// One halo transfer: `payload` rows are aligned with the exchange-plan
// segment the (from, peer) pair agreed on at partition time; `slot` selects
// the vertex input (feature phase) or additive output (combine phase).
struct HaloMessage {
  int from = -1;
  int slot = -1;
  Tensor payload;
};

using Channel = BoundedChannel<HaloMessage>;

// The per-execution cancellation token. The first worker that fails wins the
// race to store its exception and closes every exchange channel, so no peer
// ever blocks on a Push/Pop against a dead shard; everyone else observes
// either a closed channel (Push -> false, Pop -> nullopt) or the cancelled
// flag at a loop boundary and unwinds without doing further work. Unwind is
// bounded: after Cancel() no worker starts another interpreter run, so the
// slowest path out is one in-flight inner run plus the channel drains.
class ShardCancellation {
 public:
  ShardCancellation(std::vector<std::unique_ptr<Channel>>& feature_channels,
                    std::vector<std::unique_ptr<Channel>>& combine_channels)
      : feature_channels_(feature_channels), combine_channels_(combine_channels) {}

  // Records the calling worker's current exception (first caller wins) and
  // releases every blocked peer. Safe to call concurrently from any worker.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error_ == nullptr) {
        error_ = std::current_exception();
      }
    }
    cancelled_.store(true, std::memory_order_release);
    for (auto& channel : feature_channels_) {
      channel->Close();
    }
    for (auto& channel : combine_channels_) {
      channel->Close();
    }
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  // Only meaningful after every worker joined.
  std::exception_ptr error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }

 private:
  mutable std::mutex mutex_;
  std::exception_ptr error_;
  std::atomic<bool> cancelled_{false};
  std::vector<std::unique_ptr<Channel>>& feature_channels_;
  std::vector<std::unique_ptr<Channel>>& combine_channels_;
};

// Injected-failure check for one shard fault site. Returns without cost in
// healthy runs (enabled() is one relaxed load); a tripped site throws
// ShardFault, which the recovery ladder treats as transient.
void MaybeInjectShardFault(FaultSite site, int shard_id) {
  FaultInjector& faults = FaultInjector::Get();
  if (faults.enabled() && faults.ShouldFail(site)) {
    throw ShardFault(site, shard_id);
  }
}

// The inputs a GIR binds per graph granularity, deduplicated by name (the
// same feature key may be read from both endpoints).
struct InputSets {
  std::vector<std::pair<std::string, int32_t>> vertex;  // name, width
  std::vector<std::pair<std::string, int32_t>> typed;   // name, width
  std::vector<std::pair<std::string, int32_t>> edge;    // name, width
};

InputSets CollectInputs(const GirGraph& gir) {
  InputSets sets;
  const auto add = [](std::vector<std::pair<std::string, int32_t>>& list,
                      const std::string& name, int32_t width) {
    for (const auto& [existing, w] : list) {
      if (existing == name) {
        SEASTAR_CHECK_EQ(w, width) << "shard runtime: input '" << name
                                   << "' read at two widths";
        return;
      }
    }
    list.emplace_back(name, width);
  };
  for (const Node& node : gir.nodes()) {
    if (node.kind == OpKind::kInputTypedSrc) {
      add(sets.typed, node.name, node.width);
    } else if (node.kind == OpKind::kInput) {
      if (node.type == GraphType::kEdge) {
        add(sets.edge, node.name, node.width);
      } else {
        add(sets.vertex, node.name, node.width);
      }
    }
  }
  return sets;
}

// How a program output is stitched back into the global result.
enum class OutputKind {
  kOwnedRows,        // D-typed: owned rows are exact; contiguous copy.
  kEdgeRows,         // E-typed: scatter through the local->global edge map.
  kAdditiveRows,     // S-typed additive: combine partials on the owner.
  kAdditiveTyped,    // [num_types, N, w] stack of S-typed partials.
};

struct OutputInfo {
  std::string name;
  OutputKind kind = OutputKind::kOwnedRows;
  int32_t width = 1;
};

std::vector<OutputInfo> CollectOutputs(const GirGraph& gir) {
  std::vector<OutputInfo> outputs;
  for (size_t i = 0; i < gir.outputs().size(); ++i) {
    const Node& node = gir.node(gir.outputs()[i]);
    OutputInfo info;
    info.name = gir.output_names()[i];
    info.width = node.width;
    if (node.kind == OpKind::kAggTypedToSrc) {
      info.kind = OutputKind::kAdditiveTyped;
    } else if (node.type == GraphType::kEdge) {
      info.kind = OutputKind::kEdgeRows;
    } else if (node.type == GraphType::kSrc) {
      info.kind = OutputKind::kAdditiveRows;
    } else {
      info.kind = OutputKind::kOwnedRows;
    }
    outputs.push_back(std::move(info));
  }
  return outputs;
}

void CopyRows(float* dst, const float* src, int64_t rows, int64_t width) {
  if (rows > 0) {
    std::memcpy(dst, src, static_cast<size_t>(rows * width) * sizeof(float));
  }
}

// Gathers `rows` (local ids on the source side) of a [*, width] matrix into
// a packed [rows.size(), width] block.
void GatherRows(float* packed, const float* matrix, const std::vector<int32_t>& rows,
                int64_t width) {
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(packed + static_cast<int64_t>(i) * width,
                matrix + static_cast<int64_t>(rows[i]) * width,
                static_cast<size_t>(width) * sizeof(float));
  }
}

void ScatterRows(float* matrix, const float* packed, const std::vector<int32_t>& rows,
                 int64_t width) {
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(matrix + static_cast<int64_t>(rows[i]) * width,
                packed + static_cast<int64_t>(i) * width,
                static_cast<size_t>(width) * sizeof(float));
  }
}

void AddRows(float* matrix, const float* packed, const std::vector<int32_t>& rows,
             int64_t width, int64_t row_offset) {
  for (size_t i = 0; i < rows.size(); ++i) {
    float* out = matrix + (static_cast<int64_t>(rows[i]) + row_offset) * width;
    const float* in = packed + static_cast<int64_t>(i) * width;
    for (int64_t j = 0; j < width; ++j) {
      out[j] += in[j];
    }
  }
}

}  // namespace

ShardRuntime::ShardRuntime(ShardRuntimeOptions options)
    : options_(options), inner_(options.seastar_options) {
  SEASTAR_CHECK_GE(options_.num_shards, 1) << "ShardRuntime: need at least one shard";
}

ShardRuntime::~ShardRuntime() = default;

GraphView ShardRuntime::PrepareView(const Graph& graph) const {
  PartitionOptions partition_options;
  partition_options.num_shards = options_.num_shards;
  auto sharded =
      std::make_shared<const ShardedGraph>(Partitioner::Partition(graph, partition_options));
  return GraphView(graph, std::move(sharded));
}

Status ShardRuntime::CheckShardable(const GirGraph& gir) {
  const std::vector<std::vector<int32_t>> consumers = gir.BuildConsumerLists();
  for (const Node& node : gir.nodes()) {
    if (node.kind == OpKind::kDegree && node.type == GraphType::kSrc) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "node " << node.id << " reads out-degree, which is partial on a "
             << "destination-partitioned shard";
    }
    const bool source_agg =
        (IsAggregation(node.kind) || node.kind == OpKind::kAggTypedToSrc) &&
        node.type == GraphType::kSrc;
    if (!source_agg) {
      continue;
    }
    if (!IsAdditiveSourceAgg(node.kind)) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "node " << node.id << " (" << OpKindName(node.kind)
             << ") aggregates over out-edges non-additively; shard partials cannot combine";
    }
    if (!gir.IsOutput(node.id) || !consumers[static_cast<size_t>(node.id)].empty()) {
      return ErrorStatus(StatusCode::kInvalidArgument)
             << "node " << node.id << " consumes an out-edge aggregate inside the program; "
             << "a shard would observe a partial sum";
    }
  }
  return Status::Ok();
}

ThreadPool* ShardRuntime::SlicePool(int shard) const {
  std::lock_guard<std::mutex> lock(pools_mutex_);
  if (slice_pools_.empty()) {
    // Slice the process pool's parallelism across shard workers: with P
    // global participants and K shards, each shard worker (itself one OS
    // thread) gets a private pool of max(0, (P - K) / K) extra workers.
    // Private pools also keep RunOnAllWorkers single-submitter — K shard
    // workers must never drive the shared process pool concurrently.
    const int global_participants = ThreadPool::Get().num_threads() + 1;
    const int per_shard =
        options_.use_pool_slices
            ? std::max(0, (global_participants - options_.num_shards) / options_.num_shards)
            : 0;
    slice_pools_.reserve(static_cast<size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
      slice_pools_.push_back(std::make_unique<ThreadPool>(per_shard));
    }
  }
  return slice_pools_[static_cast<size_t>(shard)].get();
}

RunResult ShardRuntime::Execute(const GirGraph& gir, const GraphView& view,
                                const FeatureMap& features, const RunContext& ctx) const {
  const Graph& graph = view.graph();
  const Status shardable = CheckShardable(gir);
  if (!shardable.ok()) {
    // The program cannot run partitioned; run it whole on the inner
    // interpreter so callers still get exact results.
    Counters().fallbacks->Add(1);
    SEASTAR_LOG(Debug) << "shard runtime fallback: " << shardable.message();
    return inner_.Run(gir, graph, features, ctx);
  }

  std::shared_ptr<const ShardedGraph> sharded = view.sharded();
  if (sharded == nullptr) {
    // Caller bypassed MakeSession/PrepareView; partition per call. Correct
    // but wasteful — sessions exist to amortize exactly this.
    SEASTAR_LOG(Debug) << "shard runtime: partitioning on the fly (no prepared view)";
    sharded = std::make_shared<const ShardedGraph>(
        Partitioner::Partition(graph, PartitionOptions{options_.num_shards}));
  }

  Counters().runs->Add(1);
  ProfileScope span(ctx.profiler, "shard_runtime/execute", "program");
  trace::AmbientSpan trace_span("shard_runtime");
  trace_span.Arg("shards", options_.num_shards);
  return ExecuteSharded(gir, graph, *sharded, features);
}

RunResult ShardRuntime::ExecuteSharded(const GirGraph& gir, const Graph& graph,
                                       const ShardedGraph& sharded,
                                       const FeatureMap& features) const {
  const int num_shards = sharded.num_shards;
  const int64_t num_vertices = graph.num_vertices();
  const int32_t num_types = graph.num_edge_types();
  const InputSets inputs = CollectInputs(gir);
  const std::vector<OutputInfo> outputs = CollectOutputs(gir);

  const int64_t vertex_like_inputs =
      static_cast<int64_t>(inputs.vertex.size() + inputs.typed.size());
  int64_t additive_outputs = 0;
  for (const OutputInfo& info : outputs) {
    if (info.kind == OutputKind::kAdditiveRows || info.kind == OutputKind::kAdditiveTyped) {
      ++additive_outputs;
    }
  }

  // Global result tensors, allocated up front on the orchestrating thread.
  // D/E outputs are written disjointly (each row has exactly one writer);
  // additive outputs start at zero and only their owner shard writes them.
  RunResult result;
  result.saved = std::make_shared<std::map<int32_t, Tensor>>();
  for (const OutputInfo& info : outputs) {
    switch (info.kind) {
      case OutputKind::kOwnedRows:
        result.outputs[info.name] = Tensor({num_vertices, info.width});
        break;
      case OutputKind::kEdgeRows:
        result.outputs[info.name] = Tensor({graph.num_edges(), info.width});
        break;
      case OutputKind::kAdditiveRows:
        result.outputs[info.name] = Tensor::Zeros({num_vertices, info.width});
        break;
      case OutputKind::kAdditiveTyped:
        result.outputs[info.name] =
            Tensor::Zeros({static_cast<int64_t>(num_types), num_vertices, info.width});
        break;
    }
  }

  // Two channels per shard — halo features inbound, partial sums inbound —
  // because the phases are not globally synchronized: a fast shard may start
  // returning partials while a slow one is still absorbing features. Each
  // capacity is the worst case a phase can put in flight, so within a phase
  // no Push blocks on a consumer that is itself blocked pushing (deadlock
  // freedom) while the queue stays bounded.
  std::vector<std::unique_ptr<Channel>> feature_channels;
  std::vector<std::unique_ptr<Channel>> combine_channels;
  feature_channels.reserve(static_cast<size_t>(num_shards));
  combine_channels.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const GraphShard& shard = sharded.shards[static_cast<size_t>(s)];
    const size_t feature_cap = std::max<size_t>(
        1, shard.recv_plans.size() * static_cast<size_t>(vertex_like_inputs));
    const size_t combine_cap = std::max<size_t>(
        1, shard.send_plans.size() * static_cast<size_t>(additive_outputs));
    feature_channels.push_back(std::make_unique<Channel>(feature_cap));
    combine_channels.push_back(std::make_unique<Channel>(combine_cap));
  }

  // Propagate the caller's ambient deadline into the shard workers (they are
  // fresh OS threads and would otherwise run unarmed).
  const Deadline* ambient_deadline = CurrentDeadline();

  ShardCancellation cancel(feature_channels, combine_channels);

  // Per-shard message accounting (disjoint indices; no lock needed) and the
  // per-shard state that must survive between passes.
  std::vector<int64_t> shard_messages(static_cast<size_t>(num_shards), 0);
  std::vector<int64_t> shard_bytes(static_cast<size_t>(num_shards), 0);
  std::vector<FeatureMap> local_feature_sets(static_cast<size_t>(num_shards));

  // ---- Pass 1: bind local features; send halo rows. -----------------------
  const auto pass_features = [&](int shard_id) {
    const GraphShard& shard = sharded.shards[static_cast<size_t>(shard_id)];
    const int64_t owned = shard.owned_count();
    const int64_t local_n = shard.local_count();
    ScopedDeadline deadline_scope(ambient_deadline);
    CheckExecutionDeadline("shard_pass_features");

    FeatureMap& local_features = local_feature_sets[static_cast<size_t>(shard_id)];
    for (const auto& [name, width] : inputs.vertex) {
      const Tensor& global = features.vertex.at(name);
      Tensor local({local_n, width});
      CopyRows(local.data(), global.data() + shard.owned_begin * width, owned, width);
      local_features.vertex[name] = std::move(local);
    }
    for (const auto& [name, width] : inputs.typed) {
      const Tensor& global = features.typed_vertex.at(name);
      Tensor local({static_cast<int64_t>(num_types), local_n, width});
      for (int32_t t = 0; t < num_types; ++t) {
        CopyRows(local.data() + t * local_n * width,
                 global.data() + (t * num_vertices + shard.owned_begin) * width, owned,
                 width);
      }
      local_features.typed_vertex[name] = std::move(local);
    }
    for (const auto& [name, width] : inputs.edge) {
      const Tensor& global = features.edge.at(name);
      Tensor local({static_cast<int64_t>(shard.edge_global.size()), width});
      GatherRows(local.data(), global.data(), shard.edge_global, width);
      local_features.edge[name] = std::move(local);
    }

    // Send: for every peer mirroring rows we own, pack those rows of every
    // vertex-granularity input from the global tensors (an owned local row r
    // is global row owned_begin + r — the gather below uses global rows).
    int64_t sent_messages = 0;
    int64_t sent_bytes = 0;
    for (const HaloSegment& seg : shard.send_plans) {
      if (cancel.cancelled()) {
        return;  // A peer failed; stop producing work.
      }
      const int64_t rows = static_cast<int64_t>(seg.local_rows.size());
      for (size_t vi = 0; vi < inputs.vertex.size(); ++vi) {
        const auto& [name, width] = inputs.vertex[vi];
        const Tensor& global = features.vertex.at(name);
        MaybeInjectShardFault(FaultSite::kShardSend, shard_id);
        HaloMessage message;
        message.from = shard_id;
        message.slot = static_cast<int>(vi);
        message.payload = Tensor({rows, width});
        GatherRows(message.payload.data(), global.data() + shard.owned_begin * width,
                   seg.local_rows, width);
        sent_bytes += static_cast<int64_t>(message.payload.nbytes());
        ++sent_messages;
        if (!feature_channels[static_cast<size_t>(seg.peer)]->Push(std::move(message))) {
          return;  // Closed: another shard failed; unwind quietly.
        }
      }
      for (size_t ti = 0; ti < inputs.typed.size(); ++ti) {
        const auto& [name, width] = inputs.typed[ti];
        const Tensor& global = features.typed_vertex.at(name);
        MaybeInjectShardFault(FaultSite::kShardSend, shard_id);
        HaloMessage message;
        message.from = shard_id;
        message.slot = static_cast<int>(inputs.vertex.size() + ti);
        message.payload = Tensor({static_cast<int64_t>(num_types), rows, width});
        for (int32_t t = 0; t < num_types; ++t) {
          GatherRows(message.payload.data() + t * rows * width,
                     global.data() + (t * num_vertices + shard.owned_begin) * width,
                     seg.local_rows, width);
        }
        sent_bytes += static_cast<int64_t>(message.payload.nbytes());
        ++sent_messages;
        if (!feature_channels[static_cast<size_t>(seg.peer)]->Push(std::move(message))) {
          return;
        }
      }
    }
    shard_messages[static_cast<size_t>(shard_id)] += sent_messages;
    shard_bytes[static_cast<size_t>(shard_id)] += sent_bytes;
  };

  // ---- Pass 2: absorb halo, run the unchanged Algorithm-1 interpreter
  // shard-locally, stitch exact outputs, send additive partials. ------------
  const auto pass_run = [&](int shard_id) {
    const GraphShard& shard = sharded.shards[static_cast<size_t>(shard_id)];
    const int64_t owned = shard.owned_count();
    const int64_t local_n = shard.local_count();
    ScopedDeadline deadline_scope(ambient_deadline);
    CheckExecutionDeadline("shard_pass_run");
    ScopedThreadPool pool_scope(SlicePool(shard_id));
    FeatureMap& local_features = local_feature_sets[static_cast<size_t>(shard_id)];
    int64_t sent_messages = 0;
    int64_t sent_bytes = 0;

    // Drain: every owning peer sent one message per vertex-like input.
    const int64_t expected_features =
        static_cast<int64_t>(shard.recv_plans.size()) * vertex_like_inputs;
    for (int64_t received = 0; received < expected_features; ++received) {
      std::optional<HaloMessage> message =
          feature_channels[static_cast<size_t>(shard_id)]->Pop();
      if (!message.has_value()) {
        return;  // Closed mid-drain: unwinding an error elsewhere.
      }
      MaybeInjectShardFault(FaultSite::kShardRecv, shard_id);
      const HaloSegment* seg = nullptr;
      for (const HaloSegment& candidate : shard.recv_plans) {
        if (candidate.peer == message->from) {
          seg = &candidate;
          break;
        }
      }
      SEASTAR_CHECK(seg != nullptr)
          << "shard " << shard_id << ": halo message from unexpected peer " << message->from;
      if (message->slot < static_cast<int>(inputs.vertex.size())) {
        const auto& [name, width] = inputs.vertex[static_cast<size_t>(message->slot)];
        ScatterRows(local_features.vertex[name].data(), message->payload.data(),
                    seg->local_rows, width);
      } else {
        const auto& [name, width] =
            inputs.typed[static_cast<size_t>(message->slot) - inputs.vertex.size()];
        const int64_t rows = message->payload.dim(1);
        for (int32_t t = 0; t < num_types; ++t) {
          ScatterRows(local_features.typed_vertex[name].data() + t * local_n * width,
                      message->payload.data() + t * rows * width, seg->local_rows, width);
        }
      }
    }

    if (cancel.cancelled()) {
      return;  // Never start an interpreter run into a cancelled execution.
    }
    MaybeInjectShardFault(FaultSite::kShardWorker, shard_id);
    // No profiler inside the workers: spans are recorded per run by the
    // orchestrator; the inner executors' hooks are not built for concurrent
    // sinks.
    RunResult local = inner_.Run(gir, shard.local, local_features, RunContext{});
    local_feature_sets[static_cast<size_t>(shard_id)] = FeatureMap{};

    // Stitch exact outputs; add this shard's own additive partial.
    for (size_t oi = 0; oi < outputs.size(); ++oi) {
      const OutputInfo& info = outputs[oi];
      const Tensor& local_out = local.outputs.at(info.name);
      Tensor& global_out = result.outputs.at(info.name);
      switch (info.kind) {
        case OutputKind::kOwnedRows:
          CopyRows(global_out.data() + shard.owned_begin * info.width, local_out.data(),
                   owned, info.width);
          break;
        case OutputKind::kEdgeRows:
          for (size_t e = 0; e < shard.edge_global.size(); ++e) {
            std::memcpy(global_out.data() +
                            static_cast<int64_t>(shard.edge_global[e]) * info.width,
                        local_out.data() + static_cast<int64_t>(e) * info.width,
                        static_cast<size_t>(info.width) * sizeof(float));
          }
          break;
        case OutputKind::kAdditiveRows: {
          // Own partial: this shard's owned rows, added into a zeroed region
          // that no other shard writes (peers contribute via the channel).
          float* dst = global_out.data() + shard.owned_begin * info.width;
          const float* src = local_out.data();
          for (int64_t k = 0; k < owned * info.width; ++k) {
            dst[k] += src[k];
          }
          break;
        }
        case OutputKind::kAdditiveTyped:
          for (int32_t t = 0; t < num_types; ++t) {
            const float* src = local_out.data() + t * local_n * info.width;
            float* dst =
                global_out.data() + (t * num_vertices + shard.owned_begin) * info.width;
            for (int64_t r = 0; r < owned; ++r) {
              for (int64_t j = 0; j < info.width; ++j) {
                dst[r * info.width + j] += src[r * info.width + j];
              }
            }
          }
          break;
      }
    }

    // Return halo partials to their owners, one message per (owner,
    // additive output).
    int additive_slot = 0;
    for (size_t oi = 0; oi < outputs.size(); ++oi) {
      const OutputInfo& info = outputs[oi];
      if (info.kind != OutputKind::kAdditiveRows && info.kind != OutputKind::kAdditiveTyped) {
        continue;
      }
      const Tensor& local_out = local.outputs.at(info.name);
      for (const HaloSegment& seg : shard.recv_plans) {
        const int64_t rows = static_cast<int64_t>(seg.local_rows.size());
        HaloMessage message;
        message.from = shard_id;
        message.slot = additive_slot;
        if (info.kind == OutputKind::kAdditiveRows) {
          message.payload = Tensor({rows, info.width});
          GatherRows(message.payload.data(), local_out.data(), seg.local_rows, info.width);
        } else {
          message.payload = Tensor({static_cast<int64_t>(num_types), rows, info.width});
          for (int32_t t = 0; t < num_types; ++t) {
            GatherRows(message.payload.data() + t * rows * info.width,
                       local_out.data() + t * local_n * info.width, seg.local_rows,
                       info.width);
          }
        }
        sent_bytes += static_cast<int64_t>(message.payload.nbytes());
        ++sent_messages;
        if (!combine_channels[static_cast<size_t>(seg.peer)]->Push(std::move(message))) {
          return;
        }
      }
      ++additive_slot;
    }
    shard_messages[static_cast<size_t>(shard_id)] += sent_messages;
    shard_bytes[static_cast<size_t>(shard_id)] += sent_bytes;
  };

  // ---- Pass 3: combine peer partials on masters. --------------------------
  const auto pass_combine = [&](int shard_id) {
    const GraphShard& shard = sharded.shards[static_cast<size_t>(shard_id)];
    ScopedDeadline deadline_scope(ambient_deadline);
    CheckExecutionDeadline("shard_pass_combine");

    // Drain partials addressed to this shard and combine deterministically:
    // own partial is already in place; peer contributions apply in ascending
    // sender shard id, so the float summation order never depends on thread
    // timing (bit-reproducible runs).
    const int64_t expected_partials =
        static_cast<int64_t>(shard.send_plans.size()) * additive_outputs;
    std::vector<std::vector<Tensor>> pending(
        static_cast<size_t>(num_shards),
        std::vector<Tensor>(static_cast<size_t>(additive_outputs)));
    for (int64_t received = 0; received < expected_partials; ++received) {
      std::optional<HaloMessage> message =
          combine_channels[static_cast<size_t>(shard_id)]->Pop();
      if (!message.has_value()) {
        return;
      }
      MaybeInjectShardFault(FaultSite::kShardCombine, shard_id);
      pending[static_cast<size_t>(message->from)][static_cast<size_t>(message->slot)] =
          std::move(message->payload);
    }
    if (cancel.cancelled()) {
      return;  // Peers are unwinding; leave the owned rows as-is.
    }
    for (int sender = 0; sender < num_shards; ++sender) {
      int slot = 0;
      for (size_t oi = 0; oi < outputs.size(); ++oi) {
        const OutputInfo& info = outputs[oi];
        if (info.kind != OutputKind::kAdditiveRows &&
            info.kind != OutputKind::kAdditiveTyped) {
          continue;
        }
        const Tensor& payload = pending[static_cast<size_t>(sender)][static_cast<size_t>(slot)];
        ++slot;
        if (!payload.defined()) {
          continue;  // That peer mirrors nothing of ours.
        }
        // The rows the sender packed are the ones we agreed to in our send
        // plan for that peer (aligned segment pair).
        const HaloSegment* seg = nullptr;
        for (const HaloSegment& candidate : shard.send_plans) {
          if (candidate.peer == sender) {
            seg = &candidate;
            break;
          }
        }
        SEASTAR_CHECK(seg != nullptr)
            << "shard " << shard_id << ": partial from peer " << sender
            << " without a matching exchange plan";
        Tensor& global_out = result.outputs.at(info.name);
        if (info.kind == OutputKind::kAdditiveRows) {
          AddRows(global_out.data() + shard.owned_begin * info.width, payload.data(),
                  seg->local_rows, info.width, 0);
        } else {
          const int64_t rows = payload.dim(1);
          for (int32_t t = 0; t < num_types; ++t) {
            AddRows(global_out.data() + (t * num_vertices + shard.owned_begin) * info.width,
                    payload.data() + t * rows * info.width, seg->local_rows, info.width, 0);
          }
        }
      }
    }
  };

  // The phases run as barrier-separated passes. Channel capacities equal each
  // phase's exact worst-case inbound, so every Push of pass N completes before
  // the first Pop of pass N+1 — no shard ever blocks on a peer inside a pass,
  // which makes the schedule a free choice. With pool workers available each
  // pass fans its shards out across threads; without them (single-core hosts)
  // the shards of a pass run back-to-back on the calling thread, so exactly
  // one contiguous slice of the feature tensors is hot at a time. That is the
  // schedule that makes sharding pay on one core: a slice fits in LLC where
  // the full tensor does not.
  const bool threaded = ThreadPool::Get().num_threads() > 0 && num_shards > 1;
  const auto run_pass = [&](const std::function<void(int)>& pass) {
    if (cancel.cancelled()) {
      return;  // An earlier pass failed; channels are closed.
    }
    if (!threaded) {
      for (int s = 0; s < num_shards; ++s) {
        try {
          pass(s);
        } catch (...) {
          cancel.Cancel();
          return;
        }
      }
      return;
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      workers.emplace_back([&, s] {
        try {
          pass(s);
        } catch (...) {
          cancel.Cancel();
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  };

  // Pass-level spans on the ambient request trace (the serving thread calls
  // run_pass and blocks until the shard workers join, so each span brackets
  // its whole pass). The shard workers themselves have no ambient trace —
  // attribution is at pass granularity by design.
  {
    trace::AmbientSpan pass_span("shard_pass");
    pass_span.Detail("features");
    pass_span.Arg("shards", num_shards);
    run_pass(pass_features);
  }
  {
    trace::AmbientSpan pass_span("shard_pass");
    pass_span.Detail("run");
    pass_span.Arg("shards", num_shards);
    run_pass(pass_run);
  }
  {
    trace::AmbientSpan pass_span("shard_pass");
    pass_span.Detail("combine");
    pass_span.Arg("shards", num_shards);
    run_pass(pass_combine);
  }
  if (std::exception_ptr error = cancel.error()) {
    // Every worker has joined: the unwind is complete, the channels are
    // closed and drained of influence, and the (persistent) slice pools are
    // reusable by the next Execute. Leave a breadcrumb for post-mortems —
    // recovery above us may swallow the exception entirely.
    FlightRecorder::Get().Record("shard", "execute cancelled, unwound", num_shards);
    std::rethrow_exception(error);
  }

  int64_t halo_messages = 0;
  int64_t halo_bytes = 0;
  for (int s = 0; s < num_shards; ++s) {
    halo_messages += shard_messages[static_cast<size_t>(s)];
    halo_bytes += shard_bytes[static_cast<size_t>(s)];
  }
  Counters().messages->Add(halo_messages);
  Counters().bytes->Add(halo_bytes);
  return result;
}

}  // namespace seastar
