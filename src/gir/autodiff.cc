#include "src/gir/autodiff.h"

#include <algorithm>

#include "src/common/logging.h"

namespace seastar {
namespace {

// Helper that appends nodes to the backward graph with inferred types.
class BackwardBuilder {
 public:
  explicit BackwardBuilder(GirGraph* graph) : graph_(graph) {}

  int32_t Binary(OpKind kind, int32_t a, int32_t b) {
    const Node& na = graph_->node(a);
    const Node& nb = graph_->node(b);
    SEASTAR_CHECK(na.width == nb.width || na.width == 1 || nb.width == 1);
    Node node;
    node.kind = kind;
    node.type = InferElementwiseType({na.type, nb.type});
    node.width = (kind == OpKind::kDotProduct) ? 1 : std::max(na.width, nb.width);
    node.inputs = {a, b};
    return graph_->AddNode(std::move(node));
  }

  int32_t Unary(OpKind kind, int32_t a, float attr = 0.0f) {
    const Node& na = graph_->node(a);
    Node node;
    node.kind = kind;
    node.type = na.type;
    node.width = (kind == OpKind::kReduceWidthSum) ? 1 : na.width;
    node.inputs = {a};
    node.attr = attr;
    return graph_->AddNode(std::move(node));
  }

  int32_t UnaryGrad(OpKind kind, int32_t grad, int32_t saved, float attr = 0.0f) {
    const Node& ng = graph_->node(grad);
    const Node& ns = graph_->node(saved);
    SEASTAR_CHECK_EQ(ng.width, ns.width);
    Node node;
    node.kind = kind;
    node.type = InferElementwiseType({ng.type, ns.type});
    node.width = ng.width;
    node.inputs = {grad, saved};
    node.attr = attr;
    return graph_->AddNode(std::move(node));
  }

  int32_t IdentityAs(int32_t a, GraphType forced_type) {
    const Node& na = graph_->node(a);
    Node node;
    node.kind = OpKind::kIdentity;
    node.type = forced_type;
    node.width = na.width;
    node.inputs = {a};
    return graph_->AddNode(std::move(node));
  }

  int32_t Aggregate(OpKind kind, int32_t a, GraphType orientation) {
    SEASTAR_CHECK(orientation == GraphType::kSrc || orientation == GraphType::kDst);
    Node node;
    node.kind = kind;
    node.type = orientation;
    node.width = graph_->node(a).width;
    node.inputs = {a};
    return graph_->AddNode(std::move(node));
  }

  int32_t Degree(GraphType orientation) {
    Node node;
    node.kind = OpKind::kDegree;
    node.type = orientation;
    node.width = 1;
    return graph_->AddNode(std::move(node));
  }

  GirGraph* graph_;
};

}  // namespace

BackwardGir BuildBackward(const GirGraph& forward, int32_t output_id) {
  SEASTAR_CHECK_GE(output_id, 0);
  SEASTAR_CHECK_LT(output_id, forward.num_nodes());

  BackwardGir result;
  BackwardBuilder b(&result.graph);

  // 1. Embed a copy of the forward computation (recompute subgraph). Node
  //    ids are preserved because we copy in order into an empty graph.
  result.forward_copy.resize(static_cast<size_t>(forward.num_nodes()));
  for (const Node& node : forward.nodes()) {
    Node copy = node;
    copy.id = -1;  // Reassigned by AddNode.
    const int32_t new_id = result.graph.AddNode(std::move(copy));
    result.forward_copy[static_cast<size_t>(node.id)] = new_id;
  }
  const auto fwd = [&](int32_t fwd_id) { return result.forward_copy[static_cast<size_t>(fwd_id)]; };

  // 2. The output gradient enters as a fresh input with the output's type.
  const Node& out_node = forward.node(output_id);
  int32_t grad_in;
  {
    Node node;
    node.kind = OpKind::kInput;
    node.type = out_node.type;
    node.width = out_node.width;
    node.name = kGradInputKey;
    grad_in = result.graph.AddNode(std::move(node));
  }

  // grads[fwd_id] = backward node id of the accumulated gradient (or -1).
  std::vector<int32_t> grads(static_cast<size_t>(forward.num_nodes()), -1);
  grads[static_cast<size_t>(output_id)] = grad_in;

  // Propagates `g` into forward node `input_id`, inserting the
  // graph-type-correcting aggregation / identity when needed (§5.2).
  const auto propagate = [&](int32_t input_id, int32_t g) {
    const Node& in_node = forward.node(input_id);
    if (in_node.type == GraphType::kParam || in_node.kind == OpKind::kConst ||
        in_node.kind == OpKind::kDegree) {
      return;  // No gradients for parameters/constants.
    }
    const GraphType g_type = result.graph.node(g).type;
    int32_t adjusted = g;
    if (in_node.kind == OpKind::kInputTypedSrc) {
      adjusted = b.Aggregate(OpKind::kAggTypedToSrc, g, GraphType::kSrc);
    } else if (in_node.type == GraphType::kSrc && g_type != GraphType::kSrc) {
      adjusted = b.Aggregate(OpKind::kAggSum, g, GraphType::kSrc);
    } else if (in_node.type == GraphType::kDst && g_type != GraphType::kDst) {
      adjusted = b.Aggregate(OpKind::kAggSum, g, GraphType::kDst);
    } else if (in_node.type == GraphType::kEdge && g_type != GraphType::kEdge) {
      // Per-edge gradient expressed through endpoint values; coerce to E so
      // materialization produces an edge tensor.
      adjusted = b.IdentityAs(g, GraphType::kEdge);
    }
    // Broadcast in forward (width 1 -> width w) needs a width reduction.
    if (in_node.width == 1 && result.graph.node(adjusted).width > 1) {
      adjusted = b.Unary(OpKind::kReduceWidthSum, adjusted);
    }
    int32_t& slot = grads[static_cast<size_t>(input_id)];
    slot = (slot < 0) ? adjusted : b.Binary(OpKind::kAdd, slot, adjusted);
  };

  // 3. Reverse topological sweep. Ids are topological, so descending id
  //    order guarantees every consumer contributed its gradient already.
  for (int32_t id = forward.num_nodes() - 1; id >= 0; --id) {
    const Node& node = forward.node(id);
    const int32_t g = grads[static_cast<size_t>(id)];
    if (g < 0 || IsLeaf(node.kind)) {
      continue;
    }
    switch (node.kind) {
      case OpKind::kAdd:
        propagate(node.inputs[0], g);
        propagate(node.inputs[1], g);
        break;
      case OpKind::kSub:
        propagate(node.inputs[0], g);
        propagate(node.inputs[1], b.Unary(OpKind::kNeg, g));
        break;
      case OpKind::kMul: {
        const int32_t a = node.inputs[0];
        const int32_t c = node.inputs[1];
        const bool a_broadcast =
            forward.node(a).width == 1 && node.width > 1;
        const bool c_broadcast =
            forward.node(c).width == 1 && node.width > 1;
        propagate(a, a_broadcast ? b.Binary(OpKind::kDotProduct, g, fwd(c))
                                 : b.Binary(OpKind::kMul, g, fwd(c)));
        propagate(c, c_broadcast ? b.Binary(OpKind::kDotProduct, g, fwd(a))
                                 : b.Binary(OpKind::kMul, g, fwd(a)));
        break;
      }
      case OpKind::kDiv: {
        const int32_t a = node.inputs[0];
        const int32_t c = node.inputs[1];
        // da = g / c ; dc = -(g * a) / c^2.
        propagate(a, b.Binary(OpKind::kDiv, g, fwd(c)));
        const int32_t ga = b.Binary(OpKind::kMul, g, fwd(a));
        const int32_t c2 = b.Binary(OpKind::kMul, fwd(c), fwd(c));
        propagate(c, b.Unary(OpKind::kNeg, b.Binary(OpKind::kDiv, ga, c2)));
        break;
      }
      case OpKind::kDotProduct: {
        // out = sum_j a_j b_j (width 1); da = g * b, db = g * a.
        propagate(node.inputs[0], b.Binary(OpKind::kMul, g, fwd(node.inputs[1])));
        propagate(node.inputs[1], b.Binary(OpKind::kMul, g, fwd(node.inputs[0])));
        break;
      }
      case OpKind::kNeg:
        propagate(node.inputs[0], b.Unary(OpKind::kNeg, g));
        break;
      case OpKind::kExp:
        propagate(node.inputs[0], b.Binary(OpKind::kMul, g, fwd(id)));
        break;
      case OpKind::kLog:
        propagate(node.inputs[0], b.Binary(OpKind::kDiv, g, fwd(node.inputs[0])));
        break;
      case OpKind::kRelu:
        propagate(node.inputs[0], b.UnaryGrad(OpKind::kReluGrad, g, fwd(node.inputs[0])));
        break;
      case OpKind::kLeakyRelu:
        propagate(node.inputs[0],
                  b.UnaryGrad(OpKind::kLeakyReluGrad, g, fwd(node.inputs[0]), node.attr));
        break;
      case OpKind::kSigmoid:
        propagate(node.inputs[0], b.UnaryGrad(OpKind::kSigmoidGrad, g, fwd(id)));
        break;
      case OpKind::kTanh:
        propagate(node.inputs[0], b.UnaryGrad(OpKind::kTanhGrad, g, fwd(id)));
        break;
      case OpKind::kIdentity:
        propagate(node.inputs[0], g);
        break;
      case OpKind::kReduceWidthSum:
        // Forward reduced width w -> 1; backward broadcasts g back, which the
        // elementwise width-broadcast rules already handle.
        propagate(node.inputs[0], g);
        break;
      case OpKind::kAggSum:
      case OpKind::kAggMean:
      case OpKind::kAggMax: {
        // The per-edge gradient of the aggregated value: 1 for sum, 1/deg
        // for mean, the arg-max mask for max.
        int32_t per_edge = g;
        if (node.kind == OpKind::kAggMean) {
          per_edge = b.Binary(OpKind::kDiv, g, b.Degree(node.type));
        } else if (node.kind == OpKind::kAggMax) {
          const int32_t mask = b.Binary(OpKind::kEqualMask, fwd(node.inputs[0]), fwd(id));
          per_edge = b.Binary(OpKind::kMul, g, mask);
        }
        const GraphType in_type = forward.node(node.inputs[0]).type;
        if (in_type == node.type) {
          // Key-side input: every incident edge contributed the *same* input
          // value, so the adjoint sums the per-edge gradient over those
          // edges (a degree multiplication for sum). propagate() would pass
          // the D-typed gradient through unchanged otherwise.
          per_edge = b.Aggregate(OpKind::kAggSum, per_edge, node.type);
        }
        // For S/E/opposite-side inputs, propagate() inserts the
        // orientation-flipping aggregation / identity as needed (§5.2).
        propagate(node.inputs[0], per_edge);
        break;
      }
      case OpKind::kEqualMask:
        // Piecewise-constant: zero gradient to both inputs.
        break;
      case OpKind::kAggTypeSumThenMax:
      case OpKind::kAggMaxGrad:
      case OpKind::kAggTypedToSrc:
        SEASTAR_LOG(Fatal) << "no adjoint implemented for " << OpKindName(node.kind);
        break;
      default:
        SEASTAR_LOG(Fatal) << "unhandled op in autodiff: " << OpKindName(node.kind);
    }
  }

  // 4. Mark gradients of forward inputs as backward outputs.
  for (const Node& node : forward.nodes()) {
    if (node.kind != OpKind::kInput && node.kind != OpKind::kInputTypedSrc) {
      continue;
    }
    const int32_t g = grads[static_cast<size_t>(node.id)];
    if (g < 0) {
      continue;  // Input does not influence the output.
    }
    InputGradInfo info;
    info.forward_input = node.id;
    info.key = node.name;
    info.access = node.type;
    info.typed = node.kind == OpKind::kInputTypedSrc;
    info.backward_output = g;
    info.output_name =
        std::string("grad:") + GraphTypeName(node.type) + (info.typed ? "T" : "") + ":" + node.name;
    result.graph.AddOutput(g, info.output_name);
    result.input_grads.push_back(std::move(info));
  }
  return result;
}

}  // namespace seastar
