#include "src/gir/passes.h"

#include <cmath>
#include <map>
#include <tuple>

#include "src/common/logging.h"

namespace seastar {
namespace {

// Rebuilds `graph` keeping only nodes where keep[id], remapping inputs and
// outputs. Nodes must only reference kept nodes.
PassResult Rebuild(const GirGraph& graph, const std::vector<bool>& keep) {
  PassResult result;
  result.remap.assign(static_cast<size_t>(graph.num_nodes()), -1);
  for (const Node& node : graph.nodes()) {
    if (!keep[static_cast<size_t>(node.id)]) {
      continue;
    }
    Node copy = node;
    copy.id = -1;
    for (int32_t& input : copy.inputs) {
      const int32_t mapped = result.remap[static_cast<size_t>(input)];
      SEASTAR_CHECK_GE(mapped, 0) << "kept node references an eliminated node";
      input = mapped;
    }
    result.remap[static_cast<size_t>(node.id)] = result.graph.AddNode(std::move(copy));
  }
  for (size_t i = 0; i < graph.outputs().size(); ++i) {
    const int32_t mapped = result.remap[static_cast<size_t>(graph.outputs()[i])];
    SEASTAR_CHECK_GE(mapped, 0) << "output eliminated by a pass";
    result.graph.AddOutput(mapped, graph.output_names()[i]);
  }
  return result;
}

// Identity remap.
std::vector<int32_t> IdentityRemap(int32_t n) {
  std::vector<int32_t> remap(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    remap[static_cast<size_t>(i)] = i;
  }
  return remap;
}

}  // namespace

PassResult DeadCodeElimination(const GirGraph& graph) {
  std::vector<bool> live(static_cast<size_t>(graph.num_nodes()), false);
  // Outputs are roots; sweep backwards (inputs have smaller ids than users,
  // so one reverse scan suffices).
  for (int32_t out : graph.outputs()) {
    live[static_cast<size_t>(out)] = true;
  }
  for (int32_t id = graph.num_nodes() - 1; id >= 0; --id) {
    if (!live[static_cast<size_t>(id)]) {
      continue;
    }
    for (int32_t input : graph.node(id).inputs) {
      live[static_cast<size_t>(input)] = true;
    }
  }
  return Rebuild(graph, live);
}

PassResult CommonSubexpressionElimination(const GirGraph& graph) {
  using Key = std::tuple<int, int, int32_t, std::vector<int32_t>, float, std::string>;
  std::map<Key, int32_t> seen;  // key -> new id

  PassResult result;
  result.remap.assign(static_cast<size_t>(graph.num_nodes()), -1);
  for (const Node& node : graph.nodes()) {
    Node copy = node;
    copy.id = -1;
    for (int32_t& input : copy.inputs) {
      input = result.remap[static_cast<size_t>(input)];
      SEASTAR_CHECK_GE(input, 0);
    }
    Key key{static_cast<int>(copy.kind), static_cast<int>(copy.type), copy.width, copy.inputs,
            copy.attr, copy.name};
    auto it = seen.find(key);
    if (it != seen.end()) {
      result.remap[static_cast<size_t>(node.id)] = it->second;
      continue;
    }
    const int32_t new_id = result.graph.AddNode(std::move(copy));
    seen.emplace(std::move(key), new_id);
    result.remap[static_cast<size_t>(node.id)] = new_id;
  }
  // Outputs: dedupe is fine, multiple names may point at the same node.
  for (size_t i = 0; i < graph.outputs().size(); ++i) {
    result.graph.AddOutput(result.remap[static_cast<size_t>(graph.outputs()[i])],
                           graph.output_names()[i]);
  }
  // Drop unreferenced duplicates.
  PassResult dce = DeadCodeElimination(result.graph);
  result.remap = ComposeRemaps(result.remap, dce.remap);
  result.graph = std::move(dce.graph);
  return result;
}

PassResult ConstantFold(const GirGraph& graph) {
  PassResult result;
  result.remap.assign(static_cast<size_t>(graph.num_nodes()), -1);

  const auto is_const = [&](int32_t new_id, float* value) {
    const Node& node = result.graph.node(new_id);
    if (node.kind == OpKind::kConst) {
      *value = node.attr;
      return true;
    }
    return false;
  };

  for (const Node& node : graph.nodes()) {
    Node copy = node;
    copy.id = -1;
    for (int32_t& input : copy.inputs) {
      input = result.remap[static_cast<size_t>(input)];
      SEASTAR_CHECK_GE(input, 0);
    }

    int32_t replacement = -1;
    float ca = 0.0f;
    float cb = 0.0f;
    if (copy.kind == OpKind::kIdentity && copy.type == result.graph.node(copy.inputs[0]).type) {
      // Identity chains collapse only when they do not carry a type coercion.
      replacement = copy.inputs[0];
    } else if (IsElementwiseBinary(copy.kind) && copy.inputs.size() == 2) {
      const bool const_a = is_const(copy.inputs[0], &ca);
      const bool const_b = is_const(copy.inputs[1], &cb);
      if (const_a && const_b) {
        float folded = 0.0f;
        bool ok = true;
        switch (copy.kind) {
          case OpKind::kAdd:
            folded = ca + cb;
            break;
          case OpKind::kSub:
            folded = ca - cb;
            break;
          case OpKind::kMul:
            folded = ca * cb;
            break;
          case OpKind::kDiv:
            folded = ca / cb;
            break;
          default:
            ok = false;
        }
        if (ok) {
          Node folded_node;
          folded_node.kind = OpKind::kConst;
          folded_node.type = GraphType::kParam;
          folded_node.width = 1;
          folded_node.attr = folded;
          replacement = result.graph.AddNode(std::move(folded_node));
        }
      } else if (const_b) {
        // x + 0, x - 0, x * 1, x / 1.
        if ((copy.kind == OpKind::kAdd && cb == 0.0f) ||
            (copy.kind == OpKind::kSub && cb == 0.0f) ||
            (copy.kind == OpKind::kMul && cb == 1.0f) ||
            (copy.kind == OpKind::kDiv && cb == 1.0f)) {
          replacement = copy.inputs[0];
        }
      } else if (const_a) {
        // 0 + x, 1 * x.
        if ((copy.kind == OpKind::kAdd && ca == 0.0f) ||
            (copy.kind == OpKind::kMul && ca == 1.0f)) {
          replacement = copy.inputs[1];
        }
      }
    } else if (IsElementwiseUnary(copy.kind) && copy.inputs.size() == 1 &&
               is_const(copy.inputs[0], &ca)) {
      float folded = 0.0f;
      bool ok = true;
      switch (copy.kind) {
        case OpKind::kNeg:
          folded = -ca;
          break;
        case OpKind::kExp:
          folded = std::exp(ca);
          break;
        case OpKind::kLog:
          folded = std::log(ca);
          break;
        case OpKind::kRelu:
          folded = ca > 0.0f ? ca : 0.0f;
          break;
        case OpKind::kLeakyRelu:
          folded = ca > 0.0f ? ca : copy.attr * ca;
          break;
        default:
          ok = false;
      }
      if (ok) {
        Node folded_node;
        folded_node.kind = OpKind::kConst;
        folded_node.type = GraphType::kParam;
        folded_node.width = 1;
        folded_node.attr = folded;
        replacement = result.graph.AddNode(std::move(folded_node));
      }
    }

    if (replacement >= 0) {
      result.remap[static_cast<size_t>(node.id)] = replacement;
    } else {
      result.remap[static_cast<size_t>(node.id)] = result.graph.AddNode(std::move(copy));
    }
  }
  for (size_t i = 0; i < graph.outputs().size(); ++i) {
    result.graph.AddOutput(result.remap[static_cast<size_t>(graph.outputs()[i])],
                           graph.output_names()[i]);
  }
  PassResult dce = DeadCodeElimination(result.graph);
  result.remap = ComposeRemaps(result.remap, dce.remap);
  result.graph = std::move(dce.graph);
  return result;
}

std::vector<int32_t> ComposeRemaps(const std::vector<int32_t>& first,
                                   const std::vector<int32_t>& second) {
  std::vector<int32_t> composed(first.size(), -1);
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i] >= 0) {
      composed[i] = second[static_cast<size_t>(first[i])];
    }
  }
  return composed;
}

PassResult RunStandardPasses(const GirGraph& graph) {
  PassResult acc;
  acc.graph = graph;
  acc.remap = IdentityRemap(graph.num_nodes());
  for (int round = 0; round < 4; ++round) {
    const int32_t before = acc.graph.num_nodes();
    PassResult fold = ConstantFold(acc.graph);
    acc.remap = ComposeRemaps(acc.remap, fold.remap);
    PassResult cse = CommonSubexpressionElimination(fold.graph);
    acc.remap = ComposeRemaps(acc.remap, cse.remap);
    PassResult dce = DeadCodeElimination(cse.graph);
    acc.remap = ComposeRemaps(acc.remap, dce.remap);
    acc.graph = std::move(dce.graph);
    if (acc.graph.num_nodes() == before) {
      break;
    }
  }
  return acc;
}

void OptimizeBackward(BackwardGir* backward) {
  PassResult passes = RunStandardPasses(backward->graph);
  backward->graph = std::move(passes.graph);
  for (int32_t& copy : backward->forward_copy) {
    if (copy >= 0) {
      copy = passes.remap[static_cast<size_t>(copy)];
    }
  }
  for (InputGradInfo& info : backward->input_grads) {
    info.backward_output = passes.remap[static_cast<size_t>(info.backward_output)];
    SEASTAR_CHECK_GE(info.backward_output, 0);
  }
}

}  // namespace seastar
