#include "src/gir/fusion.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/common/logging.h"

namespace seastar {
namespace {

// FSM operator category.
struct Category {
  bool is_agg = false;
  GraphType type = GraphType::kEdge;  // Output type; for aggs the orientation.
};

Category CategoryOf(const Node& node) {
  Category c;
  if (IsAggregation(node.kind)) {
    c.is_agg = true;
    c.type = node.type;  // kDst => A:D, kSrc => A:S.
  } else {
    c.type = node.type;
  }
  return c;
}

// Returns the next FSM state, or -1 when the transition is invalid.
int Transition(int state, const Category& c) {
  if (c.is_agg) {
    if ((state == 0 || state == 1)) {
      return c.type == GraphType::kDst ? 2 : 3;
    }
    return -1;
  }
  switch (state) {
    case 0:
    case 1:
      return (c.type == GraphType::kSrc || c.type == GraphType::kDst ||
              c.type == GraphType::kEdge)
                 ? 1
                 : -1;
    case 2:
      return c.type == GraphType::kDst ? 2 : -1;
    case 3:
      return c.type == GraphType::kSrc ? 3 : -1;
    default:
      return -1;
  }
}

// Incremental unit bookkeeping during the greedy topological sweep.
struct UnitState {
  std::vector<int32_t> nodes;
  bool has_agg = false;
  GraphType orientation = GraphType::kDst;
  bool orientation_fixed = false;
};

}  // namespace

ExecutionPlan BuildExecutionPlan(const GirGraph& graph, const FusionOptions& options) {
  const int32_t n = graph.num_nodes();
  ExecutionPlan plan;
  plan.unit_of.assign(static_cast<size_t>(n), -1);
  plan.stage.assign(static_cast<size_t>(n), NodeStage::kLeaf);
  plan.materialized.assign(static_cast<size_t>(n), false);
  plan.fsm_state.assign(static_cast<size_t>(n), -1);

  std::vector<UnitState> units;

  // Direct unit dependencies: dep_units[u] = units whose outputs u reads.
  std::vector<std::unordered_set<int32_t>> dep_units;

  // True when adding an edge dep -> u in the unit DAG would create a cycle,
  // i.e. dep is reachable FROM u.
  const auto reaches = [&](int32_t from, int32_t target) {
    if (from == target) {
      return true;
    }
    std::vector<int32_t> stack{from};
    std::unordered_set<int32_t> seen{from};
    while (!stack.empty()) {
      const int32_t u = stack.back();
      stack.pop_back();
      for (int32_t dep : dep_units[static_cast<size_t>(u)]) {
        if (dep == target) {
          return true;
        }
        if (seen.insert(dep).second) {
          stack.push_back(dep);
        }
      }
    }
    return false;
  };

  for (int32_t id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (IsLeaf(node.kind)) {
      plan.stage[static_cast<size_t>(id)] = NodeStage::kLeaf;
      continue;
    }
    if (node.type == GraphType::kParam) {
      plan.stage[static_cast<size_t>(id)] = NodeStage::kScalar;
      continue;
    }

    const Category cat = CategoryOf(node);

    // The FSM walk over parents, in increasing (topological) id order:
    // last-write-wins, reset on invalid (paper §6.2).
    int32_t chosen_unit = -1;
    int chosen_state = Transition(0, cat);
    SEASTAR_CHECK_GE(chosen_state, 0) << "untypeable op " << OpKindName(node.kind);
    if (options.enable_fusion) {
      std::vector<int32_t> parents = node.inputs;
      std::sort(parents.begin(), parents.end());  // Nearest (topo-latest) parent last.
      for (int32_t parent_id : parents) {
        const int32_t parent_unit = plan.unit_of[static_cast<size_t>(parent_id)];
        if (parent_unit < 0) {
          continue;  // Leaf or scalar parent: no FSM constraint.
        }
        const int parent_state = plan.fsm_state[static_cast<size_t>(parent_id)];
        const int t = Transition(parent_state, cat);
        bool legal = t >= 0;
        UnitState& candidate = units[static_cast<size_t>(parent_unit)];
        if (legal && cat.is_agg && candidate.orientation_fixed &&
            candidate.orientation != cat.type) {
          legal = false;  // Mixed aggregation orientations cannot share a kernel.
        }
        if (legal && t == 1) {
          // A pre-stage (edge-loop) op cannot consume an aggregation/post
          // value of its own unit — that value only exists after the loop.
          for (int32_t other_parent : node.inputs) {
            if (plan.unit_of[static_cast<size_t>(other_parent)] == parent_unit &&
                (plan.stage[static_cast<size_t>(other_parent)] == NodeStage::kAgg ||
                 plan.stage[static_cast<size_t>(other_parent)] == NodeStage::kPost)) {
              legal = false;
              break;
            }
          }
        }
        if (legal) {
          // Joining parent_unit must keep the unit DAG acyclic: every OTHER
          // unit this node reads from must not (transitively) depend on
          // parent_unit.
          for (int32_t other_parent : node.inputs) {
            const int32_t other_unit = plan.unit_of[static_cast<size_t>(other_parent)];
            if (other_unit >= 0 && other_unit != parent_unit &&
                reaches(other_unit, parent_unit)) {
              legal = false;
              break;
            }
          }
        }
        if (legal) {
          chosen_unit = parent_unit;
          chosen_state = t;
        } else {
          // Invalid transition: FSM restarts from state 0 (last-write-wins).
          chosen_unit = -1;
          chosen_state = Transition(0, cat);
        }
      }
    }

    if (chosen_unit < 0) {
      units.push_back(UnitState{});
      dep_units.emplace_back();
      chosen_unit = static_cast<int32_t>(units.size()) - 1;
    }
    UnitState& unit = units[static_cast<size_t>(chosen_unit)];
    unit.nodes.push_back(id);
    if (cat.is_agg) {
      unit.has_agg = true;
      unit.orientation = cat.type == GraphType::kSrc ? GraphType::kSrc : GraphType::kDst;
      unit.orientation_fixed = true;
    }
    plan.unit_of[static_cast<size_t>(id)] = chosen_unit;
    plan.fsm_state[static_cast<size_t>(id)] = chosen_state;
    plan.stage[static_cast<size_t>(id)] = cat.is_agg
                                              ? NodeStage::kAgg
                                              : (chosen_state == 1 ? NodeStage::kPre
                                                                   : NodeStage::kPost);

    // Record unit dependencies introduced by this node's cross-unit reads.
    for (int32_t parent_id : node.inputs) {
      const int32_t parent_unit = plan.unit_of[static_cast<size_t>(parent_id)];
      if (parent_unit >= 0 && parent_unit != chosen_unit) {
        dep_units[static_cast<size_t>(chosen_unit)].insert(parent_unit);
      }
    }
  }

  // Materialization planning: outputs, plus anything read by a different
  // unit (or by a scalar consumer, which cannot happen for non-P values).
  for (int32_t out : graph.outputs()) {
    if (plan.unit_of[static_cast<size_t>(out)] >= 0) {
      plan.materialized[static_cast<size_t>(out)] = true;
    }
  }
  for (int32_t id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    const int32_t my_unit = plan.unit_of[static_cast<size_t>(id)];
    for (int32_t parent_id : node.inputs) {
      const int32_t parent_unit = plan.unit_of[static_cast<size_t>(parent_id)];
      if (parent_unit >= 0 && parent_unit != my_unit) {
        plan.materialized[static_cast<size_t>(parent_id)] = true;
      }
    }
  }

  // Emit units in dependency (here: creation) order — creation order is
  // already topological because a unit only ever depends on units created
  // before its earliest node... which greedy joining can violate; sort
  // topologically over dep_units to be safe.
  std::vector<int32_t> order;
  {
    const int32_t num_units = static_cast<int32_t>(units.size());
    std::vector<int> mark(static_cast<size_t>(num_units), 0);  // 0=unseen 1=visiting 2=done
    std::vector<std::pair<int32_t, bool>> stack;
    for (int32_t u = 0; u < num_units; ++u) {
      if (mark[static_cast<size_t>(u)] != 0) {
        continue;
      }
      stack.emplace_back(u, false);
      while (!stack.empty()) {
        auto [v, expanded] = stack.back();
        stack.pop_back();
        if (expanded) {
          mark[static_cast<size_t>(v)] = 2;
          order.push_back(v);
          continue;
        }
        if (mark[static_cast<size_t>(v)] == 2) {
          continue;
        }
        SEASTAR_CHECK_NE(mark[static_cast<size_t>(v)], 1) << "cycle in unit DAG";
        mark[static_cast<size_t>(v)] = 1;
        stack.emplace_back(v, true);
        for (int32_t dep : dep_units[static_cast<size_t>(v)]) {
          if (mark[static_cast<size_t>(dep)] == 0) {
            stack.emplace_back(dep, false);
          } else {
            SEASTAR_CHECK_EQ(mark[static_cast<size_t>(dep)], 2) << "cycle in unit DAG";
          }
        }
      }
    }
  }

  std::vector<int32_t> unit_remap(units.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    unit_remap[static_cast<size_t>(order[i])] = static_cast<int32_t>(i);
  }
  plan.units.resize(units.size());
  for (size_t old_index = 0; old_index < units.size(); ++old_index) {
    UnitState& state = units[old_index];
    FusedUnit& unit = plan.units[static_cast<size_t>(unit_remap[old_index])];
    unit.nodes = std::move(state.nodes);
    unit.orientation = state.orientation;
    unit.has_aggregation = state.has_agg;
    for (int32_t id : unit.nodes) {
      const Node& node = graph.node(id);
      if (state.has_agg || node.type == GraphType::kEdge) {
        unit.needs_edge_loop = true;
      }
      // An S- or D-typed pre-stage op alone does not need edges, but if the
      // unit mixes S and D values it can only be evaluated edge-wise.
    }
    // Mixed S/D vertex values without aggregation => per-edge evaluation.
    bool has_s = false;
    bool has_d = false;
    for (int32_t id : unit.nodes) {
      const GraphType t = graph.node(id).type;
      has_s = has_s || t == GraphType::kSrc;
      has_d = has_d || t == GraphType::kDst;
    }
    if (has_s && has_d) {
      unit.needs_edge_loop = true;
    }
    if (!unit.has_aggregation && !unit.needs_edge_loop && has_s) {
      // Purely source-wise unit: iterate vertices as sources.
      unit.orientation = GraphType::kSrc;
    }
  }
  for (int32_t& u : plan.unit_of) {
    if (u >= 0) {
      u = unit_remap[static_cast<size_t>(u)];
    }
  }
  return plan;
}

std::string ExecutionPlan::ToString(const GirGraph& graph) const {
  std::ostringstream os;
  for (size_t i = 0; i < units.size(); ++i) {
    const FusedUnit& unit = units[i];
    os << "unit " << i << " [" << (unit.orientation == GraphType::kDst ? "A:D" : "A:S")
       << (unit.has_aggregation ? " agg" : "") << (unit.needs_edge_loop ? " edges" : "")
       << "]:";
    for (int32_t id : unit.nodes) {
      os << " %" << id << "=" << OpKindName(graph.node(id).kind);
      if (materialized[static_cast<size_t>(id)]) {
        os << "*";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace seastar
