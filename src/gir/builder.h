// The vertex-centric frontend: a C++ analogue of the paper's traced Python
// UDFs (§4, §5.1).
//
// Users combine symbolic `Value`s with ordinary operators; every expression
// appends a node to the underlying GirGraph, with graph types inferred by
// the §5.1 rules as the expression is built — this is the "tracer" of Fig. 5
// realized as an expression-building API instead of operator monkey-patching.
//
// Example — the heart of GAT's forward (compare paper Fig. 3):
//
//   GirBuilder b;
//   Value eu = b.Src("eu", 1);           // u.eu
//   Value ev = b.Dst("ev", 1);           // v.ev
//   Value e  = Exp(LeakyRelu(eu + ev, 0.2f));     // E-type by inference
//   Value s  = AggSum(e);                          // A:D -> D-type
//   Value a  = e / s;                              // E-type again
//   Value out = AggSum(a * b.Src("h", 16));        // D-type output
//   b.MarkOutput(out, "h_out");
#ifndef SRC_GIR_BUILDER_H_
#define SRC_GIR_BUILDER_H_

#include <string>
#include <vector>

#include "src/gir/ir.h"

namespace seastar {

class GirBuilder;

// Which endpoint an aggregation reduces onto.
enum class AggTo : uint8_t {
  kDefault,  // Rule 1: S input -> D, D input -> S, E input -> D (forward).
  kDst,      // A:D — per destination over in-edges.
  kSrc,      // A:S — per source over out-edges.
};

class Value {
 public:
  Value() = default;
  Value(GirBuilder* builder, int32_t id) : builder_(builder), id_(id) {}

  bool defined() const { return builder_ != nullptr; }
  int32_t id() const { return id_; }
  GirBuilder* builder() const { return builder_; }
  GraphType type() const;
  int32_t width() const;

 private:
  GirBuilder* builder_ = nullptr;
  int32_t id_ = -1;
};

class GirBuilder {
 public:
  GirBuilder() = default;

  // ---- Leaves. The same feature key may be accessed from both sides
  // (paper: u.h and v.h read the same tensor 'h'); repeated accesses of the
  // same (key, side) return the same node.
  Value Src(const std::string& key, int32_t width);   // u.<key>  (S-type)
  Value Dst(const std::string& key, int32_t width);   // v.<key>  (D-type)
  Value Edge(const std::string& key, int32_t width);  // e.<key>  (E-type)
  // Edge-type-indexed source feature (R-GCN): row (type(e), u) of a
  // [num_types, N, width] stack registered under `key`.
  Value TypedSrc(const std::string& key, int32_t width);
  Value Const(float value);

  // ---- Elementwise ops (also exposed as free operators below).
  Value Add(Value a, Value b);
  Value Sub(Value a, Value b);
  Value Mul(Value a, Value b);
  Value Div(Value a, Value b);
  Value Neg(Value a);
  Value Exp(Value a);
  Value Log(Value a);
  Value Relu(Value a);
  Value LeakyRelu(Value a, float slope);
  Value Sigmoid(Value a);
  Value Tanh(Value a);
  Value Identity(Value a);

  // ---- Aggregations.
  Value AggSum(Value a, AggTo to = AggTo::kDefault);
  Value AggMax(Value a, AggTo to = AggTo::kDefault);
  Value AggMean(Value a, AggTo to = AggTo::kDefault);
  // Hierarchical hetero aggregation (§6.3.5): inner sum per edge type, outer
  // max across types. A:D only.
  Value AggTypeSumThenMax(Value a);

  void MarkOutput(Value v, const std::string& name);

  const GirGraph& graph() const { return graph_; }
  GirGraph TakeGraph() { return std::move(graph_); }

  // Internal (used by Value accessors and the autodiff engine).
  const Node& node(int32_t id) const { return graph_.node(id); }
  Value RawNode(Node node);  // Adds a fully specified node (autodiff use).

 private:
  Value Binary(OpKind kind, Value a, Value b);
  Value Unary(OpKind kind, Value a, float attr = 0.0f);
  Value Aggregate(OpKind kind, Value a, AggTo to);
  Value CachedLeaf(OpKind kind, GraphType type, const std::string& key, int32_t width);

  GirGraph graph_;
  // Dedup of leaves: (kind, type, key) -> node id.
  std::vector<int32_t> leaf_ids_;
};

// Operator sugar. Both operands must come from the same builder.
Value operator+(Value a, Value b);
Value operator-(Value a, Value b);
Value operator*(Value a, Value b);
Value operator/(Value a, Value b);
Value operator-(Value a);
Value operator+(Value a, float s);
Value operator*(Value a, float s);
Value operator*(float s, Value a);
Value operator/(Value a, float s);

Value Exp(Value a);
Value Log(Value a);
Value Relu(Value a);
Value LeakyRelu(Value a, float slope);
Value Sigmoid(Value a);
Value Tanh(Value a);
Value AggSum(Value a, AggTo to = AggTo::kDefault);
Value AggMax(Value a, AggTo to = AggTo::kDefault);
Value AggMean(Value a, AggTo to = AggTo::kDefault);

}  // namespace seastar

#endif  // SRC_GIR_BUILDER_H_
