#include "src/gir/ir.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/logging.h"

namespace seastar {

const char* GraphTypeName(GraphType type) {
  switch (type) {
    case GraphType::kSrc:
      return "S";
    case GraphType::kDst:
      return "D";
    case GraphType::kEdge:
      return "E";
    case GraphType::kParam:
      return "P";
  }
  return "?";
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kInputTypedSrc:
      return "InputTypedSrc";
    case OpKind::kConst:
      return "Const";
    case OpKind::kDegree:
      return "Degree";
    case OpKind::kDotProduct:
      return "DotProduct";
    case OpKind::kEqualMask:
      return "EqualMask";
    case OpKind::kReduceWidthSum:
      return "ReduceWidthSum";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kSub:
      return "Sub";
    case OpKind::kMul:
      return "Mul";
    case OpKind::kDiv:
      return "Div";
    case OpKind::kNeg:
      return "Neg";
    case OpKind::kExp:
      return "Exp";
    case OpKind::kLog:
      return "Log";
    case OpKind::kRelu:
      return "Relu";
    case OpKind::kLeakyRelu:
      return "LeakyRelu";
    case OpKind::kSigmoid:
      return "Sigmoid";
    case OpKind::kTanh:
      return "Tanh";
    case OpKind::kIdentity:
      return "Identity";
    case OpKind::kReluGrad:
      return "ReluGrad";
    case OpKind::kLeakyReluGrad:
      return "LeakyReluGrad";
    case OpKind::kSigmoidGrad:
      return "SigmoidGrad";
    case OpKind::kTanhGrad:
      return "TanhGrad";
    case OpKind::kAggSum:
      return "AggSum";
    case OpKind::kAggMax:
      return "AggMax";
    case OpKind::kAggMean:
      return "AggMean";
    case OpKind::kAggTypeSumThenMax:
      return "AggTypeSumThenMax";
    case OpKind::kAggMaxGrad:
      return "AggMaxGrad";
    case OpKind::kAggTypedToSrc:
      return "AggTypedToSrc";
  }
  return "?";
}

bool IsAggregation(OpKind kind) {
  switch (kind) {
    case OpKind::kAggSum:
    case OpKind::kAggMax:
    case OpKind::kAggMean:
    case OpKind::kAggTypeSumThenMax:
    case OpKind::kAggTypedToSrc:
      return true;
    default:
      return false;
  }
}

bool IsElementwiseBinary(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kDotProduct:
    case OpKind::kEqualMask:
      return true;
    default:
      return false;
  }
}

bool IsElementwiseUnary(OpKind kind) {
  switch (kind) {
    case OpKind::kNeg:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kIdentity:
    case OpKind::kReduceWidthSum:
    case OpKind::kReluGrad:
    case OpKind::kLeakyReluGrad:
    case OpKind::kSigmoidGrad:
    case OpKind::kTanhGrad:
    case OpKind::kAggMaxGrad:
      return true;
    default:
      return false;
  }
}

bool IsLeaf(OpKind kind) {
  return kind == OpKind::kInput || kind == OpKind::kInputTypedSrc || kind == OpKind::kConst ||
         kind == OpKind::kDegree;
}

GraphType InferElementwiseType(const std::vector<GraphType>& input_types) {
  // Rule 4: P does not affect the result. Rule 2: a single graph type passes
  // through. Rule 3: two or more distinct types from {S, D, E} give E.
  bool has_s = false;
  bool has_d = false;
  bool has_e = false;
  for (GraphType t : input_types) {
    has_s = has_s || t == GraphType::kSrc;
    has_d = has_d || t == GraphType::kDst;
    has_e = has_e || t == GraphType::kEdge;
  }
  const int distinct = static_cast<int>(has_s) + static_cast<int>(has_d) + static_cast<int>(has_e);
  if (distinct == 0) {
    return GraphType::kParam;
  }
  if (distinct > 1 || has_e) {
    return GraphType::kEdge;
  }
  return has_s ? GraphType::kSrc : GraphType::kDst;
}

int32_t GirGraph::AddNode(Node node) {
  node.id = static_cast<int32_t>(nodes_.size());
  for (int32_t input : node.inputs) {
    SEASTAR_CHECK_GE(input, 0);
    SEASTAR_CHECK_LT(input, node.id) << "GIR must be built in topological order";
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

namespace {

// 64-bit FNV-1a. Chosen over std::hash for a stable, well-mixed digest whose
// collisions are vanishingly unlikely for the handful of distinct GIRs a
// process ever builds.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashU32(uint64_t* h, uint32_t v) { HashBytes(h, &v, sizeof(v)); }

void HashString(uint64_t* h, const std::string& s) {
  HashU32(h, static_cast<uint32_t>(s.size()));
  HashBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t GirGraph::Fingerprint() const {
  uint64_t h = kFnvOffset;
  HashU32(&h, static_cast<uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    HashU32(&h, static_cast<uint32_t>(node.kind));
    HashU32(&h, static_cast<uint32_t>(node.type));
    HashU32(&h, static_cast<uint32_t>(node.width));
    // Hash the attr's bit pattern, not its value: -0.0f vs 0.0f compile to
    // different constants and NaN would otherwise never equal itself.
    uint32_t attr_bits = 0;
    std::memcpy(&attr_bits, &node.attr, sizeof(attr_bits));
    HashU32(&h, attr_bits);
    HashU32(&h, static_cast<uint32_t>(node.inputs.size()));
    for (int32_t input : node.inputs) {
      HashU32(&h, static_cast<uint32_t>(input));
    }
    HashString(&h, node.name);
  }
  HashU32(&h, static_cast<uint32_t>(outputs_.size()));
  for (int32_t id : outputs_) {
    HashU32(&h, static_cast<uint32_t>(id));
  }
  for (const std::string& name : output_names_) {
    HashString(&h, name);
  }
  return h;
}

void GirGraph::AddOutput(int32_t id, std::string name) {
  SEASTAR_CHECK_GE(id, 0);
  SEASTAR_CHECK_LT(id, num_nodes());
  outputs_.push_back(id);
  output_names_.push_back(std::move(name));
}

bool GirGraph::IsOutput(int32_t id) const {
  return std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end();
}

std::vector<std::vector<int32_t>> GirGraph::BuildConsumerLists() const {
  std::vector<std::vector<int32_t>> consumers(nodes_.size());
  for (const Node& node : nodes_) {
    for (int32_t input : node.inputs) {
      consumers[static_cast<size_t>(input)].push_back(node.id);
    }
  }
  return consumers;
}

std::string GirGraph::ToString() const {
  std::ostringstream os;
  for (const Node& node : nodes_) {
    os << "%" << node.id << ":" << GraphTypeName(node.type) << "[" << node.width << "] = "
       << OpKindName(node.kind);
    if (!node.name.empty()) {
      os << "<" << node.name << ">";
    }
    os << "(";
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      os << "%" << node.inputs[i];
    }
    os << ")";
    if (node.kind == OpKind::kConst || node.kind == OpKind::kLeakyRelu ||
        node.kind == OpKind::kLeakyReluGrad) {
      os << " attr=" << node.attr;
    }
    if (IsOutput(node.id)) {
      os << "  // output";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace seastar
