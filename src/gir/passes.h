// Graph-level optimizations on GIRs (paper §6 intro): dead code elimination,
// common sub-expression elimination, and constant folding with algebraic
// simplification. Each pass rebuilds the graph and reports an id remap so
// callers (notably the compiled-program wrapper, which must keep the
// backward GIR's forward_copy and input-grad tables coherent) can track
// nodes across passes.
#ifndef SRC_GIR_PASSES_H_
#define SRC_GIR_PASSES_H_

#include <vector>

#include "src/gir/autodiff.h"
#include "src/gir/ir.h"

namespace seastar {

struct PassResult {
  GirGraph graph;
  // remap[old_id] = new id, or -1 when the node was eliminated.
  std::vector<int32_t> remap;
};

// Removes nodes that do not reach any output.
PassResult DeadCodeElimination(const GirGraph& graph);

// Merges structurally identical nodes (same kind/type/width/attr/name and
// already-merged inputs).
PassResult CommonSubexpressionElimination(const GirGraph& graph);

// Folds operations whose operands are all constants and applies algebraic
// identities (x+0, x*1, x/1, x-0, Identity chains).
PassResult ConstantFold(const GirGraph& graph);

// Composition: remap_ab[x] = b[a[x]] treating -1 as "gone".
std::vector<int32_t> ComposeRemaps(const std::vector<int32_t>& first,
                                   const std::vector<int32_t>& second);

// Runs Fold -> CSE -> DCE until fixpoint (bounded). Returns the cumulative
// remap from the original ids.
PassResult RunStandardPasses(const GirGraph& graph);

// Convenience: runs the standard passes over a backward GIR and rewrites its
// forward_copy / input_grads tables through the remap.
void OptimizeBackward(BackwardGir* backward);

}  // namespace seastar

#endif  // SRC_GIR_PASSES_H_
