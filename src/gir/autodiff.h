// Automatic differentiation on GIRs (paper §5.2).
//
// Given a forward GIR and the id of its (single) output, BuildBackward
// constructs a *backward GIR*: a fresh program whose inputs are the forward
// program's inputs plus a gradient tensor for the output, and whose outputs
// are the gradients of every forward kInput/kInputTypedSrc node.
//
// Two properties mirror the paper's engine:
//
//  * Gradient accumulation and ordering — nodes are differentiated in
//    reverse topological order, so an operator's gradient is complete (all
//    downstream contributions Added) before it propagates further (§5.2:
//    "we make sure that an operator's all downstream operators are
//    differentiated before itself").
//
//  * Graph-type-aware adjoints — when an E-type operator's input is S- or
//    D-typed, the adjoint "ingests" an edge-wise aggregation of the opposite
//    orientation (§5.2), which is what makes the backward GIR a seastar
//    pattern again (§6.3.4) and hence fusible by the same FSM.
//
// The backward GIR embeds a copy of the forward computation (the
// `forward_copy` map) instead of capturing saved tensors: Seastar never
// materialized intra-unit edge values in the forward pass, so the fused
// backward kernels recompute them on the fly. Baseline executors, which DO
// materialize intermediates (and pay the memory for keeping them alive),
// seed these copies from their saved forward values instead of recomputing.
#ifndef SRC_GIR_AUTODIFF_H_
#define SRC_GIR_AUTODIFF_H_

#include <string>
#include <vector>

#include "src/gir/ir.h"

namespace seastar {

// Reserved feature key under which the output gradient enters the backward
// program.
inline constexpr char kGradInputKey[] = "__grad";

struct InputGradInfo {
  int32_t forward_input = -1;      // Forward node id of the kInput[TypedSrc].
  std::string key;                 // Feature key of that input.
  GraphType access = GraphType::kSrc;  // How the forward program read it.
  bool typed = false;              // True for kInputTypedSrc.
  int32_t backward_output = -1;    // Backward node id holding the gradient.
  std::string output_name;         // Name under which it is marked as output.
};

struct BackwardGir {
  GirGraph graph;
  // forward_copy[fwd_id] = backward node id of the recomputed forward value,
  // or -1 once eliminated by a pass.
  std::vector<int32_t> forward_copy;
  std::vector<InputGradInfo> input_grads;
};

// Differentiates `forward` with respect to node `output_id`. Aborts on ops
// without an implemented adjoint (kAggTypeSumThenMax).
BackwardGir BuildBackward(const GirGraph& forward, int32_t output_id);

}  // namespace seastar

#endif  // SRC_GIR_AUTODIFF_H_
