#include "src/gir/builder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace seastar {

GraphType Value::type() const {
  SEASTAR_CHECK(defined());
  return builder_->node(id_).type;
}

int32_t Value::width() const {
  SEASTAR_CHECK(defined());
  return builder_->node(id_).width;
}

Value GirBuilder::CachedLeaf(OpKind kind, GraphType type, const std::string& key, int32_t width) {
  SEASTAR_CHECK_GT(width, 0);
  for (int32_t id : leaf_ids_) {
    const Node& node = graph_.node(id);
    if (node.kind == kind && node.type == type && node.name == key) {
      SEASTAR_CHECK_EQ(node.width, width)
          << "feature '" << key << "' re-declared with a different width";
      return Value(this, id);
    }
  }
  Node node;
  node.kind = kind;
  node.type = type;
  node.width = width;
  node.name = key;
  int32_t id = graph_.AddNode(std::move(node));
  leaf_ids_.push_back(id);
  return Value(this, id);
}

Value GirBuilder::Src(const std::string& key, int32_t width) {
  return CachedLeaf(OpKind::kInput, GraphType::kSrc, key, width);
}

Value GirBuilder::Dst(const std::string& key, int32_t width) {
  return CachedLeaf(OpKind::kInput, GraphType::kDst, key, width);
}

Value GirBuilder::Edge(const std::string& key, int32_t width) {
  return CachedLeaf(OpKind::kInput, GraphType::kEdge, key, width);
}

Value GirBuilder::TypedSrc(const std::string& key, int32_t width) {
  // Typed source features depend on the *edge's* type as well as its source
  // vertex, so they are only evaluable per edge: E-typed, not S-typed.
  return CachedLeaf(OpKind::kInputTypedSrc, GraphType::kEdge, key, width);
}

Value GirBuilder::Const(float value) {
  Node node;
  node.kind = OpKind::kConst;
  node.type = GraphType::kParam;
  node.width = 1;
  node.attr = value;
  return Value(this, graph_.AddNode(std::move(node)));
}

Value GirBuilder::Binary(OpKind kind, Value a, Value b) {
  SEASTAR_CHECK(a.defined() && b.defined());
  SEASTAR_CHECK(a.builder() == this && b.builder() == this)
      << "operands come from different builders";
  const Node& na = graph_.node(a.id());
  const Node& nb = graph_.node(b.id());
  SEASTAR_CHECK(na.width == nb.width || na.width == 1 || nb.width == 1)
      << OpKindName(kind) << ": incompatible widths " << na.width << " vs " << nb.width;
  Node node;
  node.kind = kind;
  node.type = InferElementwiseType({na.type, nb.type});
  node.width = std::max(na.width, nb.width);
  node.inputs = {a.id(), b.id()};
  return Value(this, graph_.AddNode(std::move(node)));
}

Value GirBuilder::Unary(OpKind kind, Value a, float attr) {
  SEASTAR_CHECK(a.defined());
  SEASTAR_CHECK(a.builder() == this);
  const Node& na = graph_.node(a.id());
  Node node;
  node.kind = kind;
  node.type = na.type;  // Rule 2.
  node.width = na.width;
  node.inputs = {a.id()};
  node.attr = attr;
  return Value(this, graph_.AddNode(std::move(node)));
}

Value GirBuilder::Aggregate(OpKind kind, Value a, AggTo to) {
  SEASTAR_CHECK(a.defined());
  SEASTAR_CHECK(a.builder() == this);
  const Node& na = graph_.node(a.id());
  SEASTAR_CHECK(na.type != GraphType::kParam) << "cannot aggregate a parameter";
  GraphType out_type = GraphType::kDst;
  switch (to) {
    case AggTo::kDst:
      out_type = GraphType::kDst;
      break;
    case AggTo::kSrc:
      out_type = GraphType::kSrc;
      break;
    case AggTo::kDefault:
      // Rule 1: S -> D, D -> S; E defaults to D in the forward direction.
      out_type = na.type == GraphType::kSrc
                     ? GraphType::kDst
                     : (na.type == GraphType::kDst ? GraphType::kSrc : GraphType::kDst);
      break;
  }
  Node node;
  node.kind = kind;
  node.type = out_type;
  node.width = na.width;
  node.inputs = {a.id()};
  return Value(this, graph_.AddNode(std::move(node)));
}

Value GirBuilder::Add(Value a, Value b) { return Binary(OpKind::kAdd, a, b); }
Value GirBuilder::Sub(Value a, Value b) { return Binary(OpKind::kSub, a, b); }
Value GirBuilder::Mul(Value a, Value b) { return Binary(OpKind::kMul, a, b); }
Value GirBuilder::Div(Value a, Value b) { return Binary(OpKind::kDiv, a, b); }
Value GirBuilder::Neg(Value a) { return Unary(OpKind::kNeg, a); }
Value GirBuilder::Exp(Value a) { return Unary(OpKind::kExp, a); }
Value GirBuilder::Log(Value a) { return Unary(OpKind::kLog, a); }
Value GirBuilder::Relu(Value a) { return Unary(OpKind::kRelu, a); }
Value GirBuilder::LeakyRelu(Value a, float slope) {
  return Unary(OpKind::kLeakyRelu, a, slope);
}
Value GirBuilder::Sigmoid(Value a) { return Unary(OpKind::kSigmoid, a); }
Value GirBuilder::Tanh(Value a) { return Unary(OpKind::kTanh, a); }
Value GirBuilder::Identity(Value a) { return Unary(OpKind::kIdentity, a); }

Value GirBuilder::AggSum(Value a, AggTo to) { return Aggregate(OpKind::kAggSum, a, to); }
Value GirBuilder::AggMax(Value a, AggTo to) { return Aggregate(OpKind::kAggMax, a, to); }
Value GirBuilder::AggMean(Value a, AggTo to) { return Aggregate(OpKind::kAggMean, a, to); }
Value GirBuilder::AggTypeSumThenMax(Value a) {
  return Aggregate(OpKind::kAggTypeSumThenMax, a, AggTo::kDst);
}

void GirBuilder::MarkOutput(Value v, const std::string& name) {
  SEASTAR_CHECK(v.defined());
  SEASTAR_CHECK(v.builder() == this);
  graph_.AddOutput(v.id(), name);
}

Value GirBuilder::RawNode(Node node) { return Value(this, graph_.AddNode(std::move(node))); }

// ---- Free operators -----------------------------------------------------------------------------

namespace {
GirBuilder* BuilderOf(Value a) {
  SEASTAR_CHECK(a.defined());
  return a.builder();
}
}  // namespace

Value operator+(Value a, Value b) { return BuilderOf(a)->Add(a, b); }
Value operator-(Value a, Value b) { return BuilderOf(a)->Sub(a, b); }
Value operator*(Value a, Value b) { return BuilderOf(a)->Mul(a, b); }
Value operator/(Value a, Value b) { return BuilderOf(a)->Div(a, b); }
Value operator-(Value a) { return BuilderOf(a)->Neg(a); }
Value operator+(Value a, float s) { return BuilderOf(a)->Add(a, BuilderOf(a)->Const(s)); }
Value operator*(Value a, float s) { return BuilderOf(a)->Mul(a, BuilderOf(a)->Const(s)); }
Value operator*(float s, Value a) { return a * s; }
Value operator/(Value a, float s) { return BuilderOf(a)->Div(a, BuilderOf(a)->Const(s)); }

Value Exp(Value a) { return BuilderOf(a)->Exp(a); }
Value Log(Value a) { return BuilderOf(a)->Log(a); }
Value Relu(Value a) { return BuilderOf(a)->Relu(a); }
Value LeakyRelu(Value a, float slope) { return BuilderOf(a)->LeakyRelu(a, slope); }
Value Sigmoid(Value a) { return BuilderOf(a)->Sigmoid(a); }
Value Tanh(Value a) { return BuilderOf(a)->Tanh(a); }
Value AggSum(Value a, AggTo to) { return BuilderOf(a)->AggSum(a, to); }
Value AggMax(Value a, AggTo to) { return BuilderOf(a)->AggMax(a, to); }
Value AggMean(Value a, AggTo to) { return BuilderOf(a)->AggMean(a, to); }

}  // namespace seastar
