// Seastar operator fusion (paper §6.2) and execution planning (§5.3).
//
// The fusion pass walks the GIR in topological order driving the 4-state
// finite state machine of Fig. 8:
//
//   state 0 --{S,D,E}--> 1          (source / edge stage)
//   state 1 --{S,D,E}--> 1
//   state 0,1 --A:D--> 2            (aggregate onto destinations)
//   state 0,1 --A:S--> 3            (aggregate onto sources)
//   state 2 --D--> 2                (post-aggregation vertex ops)
//   state 3 --S--> 3
//   anything else                   invalid -> the FSM restarts (new unit)
//
// Ties between multiple fusible parents use last-write-wins in topological
// parent order, which realizes the paper's "fuse with the nearest parent"
// rule (the GAT Div example of §6.2 falls out of this: Div's nearest parent
// is the AggSum in state 2, E is invalid from state 2, so Div restarts the
// FSM and starts the second fused unit).
//
// Beyond the paper's description we enforce two structural legality
// conditions a fused unit must satisfy to be executable as one kernel, and
// conservatively refuse a fusion that would violate them:
//   * all aggregations in a unit share one orientation (all A:D or all A:S);
//   * the unit dependency graph stays acyclic (a pre-aggregation op may not
//     consume, even transitively through another unit, an aggregation result
//     of its own unit — the GAT forward needs two kernels for this reason).
//
// The resulting ExecutionPlan partitions compute nodes into fused units and
// decides materialization (§5.3 / §6 "materialization planning"): only
// values consumed outside their unit (or marked as program outputs) are
// written to memory — D/S values as [num_vertices, width] tensors, E values
// as [num_edges, width] tensors; everything else lives in registers inside
// the generated kernel loop.
#ifndef SRC_GIR_FUSION_H_
#define SRC_GIR_FUSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gir/ir.h"

namespace seastar {

enum class NodeStage : uint8_t {
  kLeaf,    // kInput / kInputTypedSrc / kDegree: read, not computed.
  kScalar,  // P-type compute (constants); evaluated host-side.
  kPre,     // Edge-stage op (FSM state 1): evaluated per edge.
  kAgg,     // A-type op: accumulated across the edge loop.
  kPost,    // Vertex-stage op (FSM states 2/3): evaluated after the loop.
};

struct FusedUnit {
  std::vector<int32_t> nodes;  // Topologically ordered compute nodes.
  // Iteration side: kDst = in-CSR (key vertex is an edge's destination),
  // kSrc = out-CSR. Pure edge/vertex units default to kDst.
  GraphType orientation = GraphType::kDst;
  bool has_aggregation = false;
  // True when the unit touches edges at all (E/S-vs-D mixing or aggregation);
  // false for purely vertex-wise units, which skip the edge loop entirely.
  bool needs_edge_loop = false;
};

struct ExecutionPlan {
  std::vector<FusedUnit> units;        // Topologically ordered by dependency.
  std::vector<int32_t> unit_of;        // Per node; -1 for leaves/scalars.
  std::vector<NodeStage> stage;        // Per node.
  std::vector<bool> materialized;      // Per node: written to a tensor.
  std::vector<int32_t> fsm_state;      // Per node; -1 where not applicable.

  std::string ToString(const GirGraph& graph) const;
};

struct FusionOptions {
  // Disabled => every compute node forms its own unit (the no-fusion
  // ablation; every intermediate is materialized).
  bool enable_fusion = true;
};

ExecutionPlan BuildExecutionPlan(const GirGraph& graph, const FusionOptions& options = {});

}  // namespace seastar

#endif  // SRC_GIR_FUSION_H_
