// The graph-aware intermediate representation (GIR) of the paper (§5.1).
//
// A GIR is a DAG of operations over *per-vertex/per-edge feature vectors*.
// Every value (node output) carries:
//   * a GraphType — S (source-wise), D (destination-wise), E (edge-wise) or
//     P (parameter, shared by all vertices) — inferred with the paper's four
//     rules (§5.1 "Graph type inference");
//   * a feature width (the value's vector length for one vertex/edge; the
//     batched tensor is then [num_vertices, width] or [num_edges, width]).
//
// Aggregation operators (AggSum/AggMax/AggMean, the paper's A-type) reduce
// edge-evaluable values onto one endpoint; their orientation (A:D vs A:S,
// §6.2) is the graph type of their output. The heterogeneous hierarchical
// aggregation of §6.3.5 is the two-level kAggTypeSumThenMax.
#ifndef SRC_GIR_IR_H_
#define SRC_GIR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seastar {

enum class GraphType : uint8_t {
  kSrc,    // S: one row per source vertex, read via edge's src id.
  kDst,    // D: one row per destination vertex, read via edge's dst id.
  kEdge,   // E: one row per edge, read via edge id.
  kParam,  // P: shared scalar/vector parameter.
};

const char* GraphTypeName(GraphType type);

enum class OpKind : uint8_t {
  // Leaves.
  kInput,          // A feature tensor; `name` is the key, `type` the access side.
  kInputTypedSrc,  // Edge-type-indexed source feature: row (edge_type, src_id)
                   // of a [num_types, N, width] stack (R-GCN's W_r h_u).
  kConst,          // Scalar constant (P-type, width 1).

  // Degree of the key vertex (width 1). type kDst = in-degree, kSrc =
  // out-degree. Used by AggMean's backward.
  kDegree,

  // Elementwise binary (widths equal, or one operand of width 1 broadcasts).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // sum_j a_j * b_j -> width 1. Backward of a broadcast multiply.
  kDotProduct,
  // 1.0 where a == b else 0.0 (argmax masks for AggMax backward).
  kEqualMask,

  // Elementwise unary.
  kNeg,
  kExp,
  kLog,
  kRelu,
  kLeakyRelu,  // attr scalar = slope.
  kSigmoid,
  kTanh,
  kIdentity,
  // sum over the feature width -> width 1. Backward of a broadcast add.
  kReduceWidthSum,

  // Unary gradient helpers (binary nodes: [grad, saved_forward_value]).
  kReluGrad,       // inputs: grad, forward *input*.
  kLeakyReluGrad,  // inputs: grad, forward *input*; attr = slope.
  kSigmoidGrad,    // inputs: grad, forward *output*.
  kTanhGrad,       // inputs: grad, forward *output*.

  // A-type aggregations. Output type records the orientation:
  // kDst = aggregate per destination over in-edges (A:D),
  // kSrc = aggregate per source over out-edges (A:S).
  kAggSum,
  kAggMax,
  kAggMean,  // Sum divided by degree.

  // Hierarchical heterogeneous aggregation (§6.3.5): inner Sum over edges of
  // the same type, outer Max over the per-type partial sums.
  kAggTypeSumThenMax,

  // Backward of kAggMax/kAggTypeSumThenMax: routes grad to arg-max
  // contributors. inputs: [grad(agg output), original agg input].
  kAggMaxGrad,

  // Backward of the typed-src input: per-(type, src) aggregation of an
  // edge-evaluable value; output is a typed stack [num_types, N, width].
  kAggTypedToSrc,
};

const char* OpKindName(OpKind kind);

bool IsAggregation(OpKind kind);
bool IsElementwiseBinary(OpKind kind);
bool IsElementwiseUnary(OpKind kind);  // Includes the *Grad binaries (pointwise).
bool IsLeaf(OpKind kind);

struct Node {
  int32_t id = -1;
  OpKind kind = OpKind::kIdentity;
  GraphType type = GraphType::kEdge;  // Output graph type.
  int32_t width = 1;                  // Output feature width.
  std::vector<int32_t> inputs;        // Node ids.
  float attr = 0.0f;                  // Slope / constant value.
  std::string name;                   // Feature key for kInput*/outputs.
};

// Rule 2/3/4 of §5.1 for non-aggregation ops: P is neutral; equal types pass
// through; any mix of two or more of {S, D, E} yields E.
GraphType InferElementwiseType(const std::vector<GraphType>& input_types);

// A GIR program: nodes in SSA form (a node's inputs always have smaller ids,
// so the node vector is already a topological order), plus designated
// outputs.
class GirGraph {
 public:
  int32_t AddNode(Node node);  // Fills in id; returns it.

  // Content fingerprint (FNV-1a over every node's kind/type/width/attr/
  // inputs/name plus the output list). Two GIRs with equal fingerprints plan
  // and compile identically, which is what the execution-plan cache keys on —
  // identity by content, not by address, so a rebuilt-but-identical program
  // still hits.
  uint64_t Fingerprint() const;

  const Node& node(int32_t id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& mutable_node(int32_t id) { return nodes_[static_cast<size_t>(id)]; }
  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }

  void AddOutput(int32_t id, std::string name);
  const std::vector<int32_t>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const { return output_names_; }
  bool IsOutput(int32_t id) const;

  // Consumers of each node (recomputed on demand).
  std::vector<std::vector<int32_t>> BuildConsumerLists() const;

  // Multi-line dump for debugging and golden tests.
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
  std::vector<int32_t> outputs_;
  std::vector<std::string> output_names_;
};

}  // namespace seastar

#endif  // SRC_GIR_IR_H_
