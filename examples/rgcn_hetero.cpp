// Heterogeneous-graph example: entity classification on an aifb-like
// knowledge graph (90 relation types) with R-GCN, comparing the fused
// Seastar typed kernel against the paper's DGL baselines (Table 3 in
// miniature).
//
//   ./rgcn_hetero [--dataset=aifb] [--epochs=10] [--scale=0.5]
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/models/rgcn.h"
#include "src/core/train.h"

int main(int argc, char** argv) {
  using namespace seastar;

  const std::string dataset_name = FlagValue(argc, argv, "dataset", "aifb");
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 10));
  const double scale = FlagDouble(argc, argv, "scale", 0.5);

  DatasetOptions options;
  options.scale = scale;
  Dataset data = MakeDatasetByName(dataset_name, options);
  std::printf("dataset: %s, %d relation types\n\n", data.graph.DebugString().c_str(),
              data.graph.num_edge_types());
  std::printf("%-10s %14s %14s %10s %10s\n", "mode", "epoch (ms)", "peak memory", "loss",
              "accuracy");

  for (RgcnMode mode : {RgcnMode::kSeastar, RgcnMode::kDglBmm, RgcnMode::kDglSequential}) {
    RgcnConfig config;
    config.mode = mode;
    Rgcn model(data, config);
    TrainConfig train;
    train.epochs = epochs;
    train.warmup_epochs = 2;
    TrainResult result = TrainNodeClassification(model, data, train);
    std::printf("%-10s %14.2f %14s %10.4f %10.3f\n", RgcnModeName(mode), result.avg_epoch_ms,
                HumanBytes(result.peak_bytes).c_str(), result.final_loss,
                result.train_accuracy);
  }
  return 0;
}
