// End-to-end learning demo on data with real structure: community detection
// on a stochastic block model, where (unlike the scale-matched synthetic
// stand-ins used by the benchmarks) a GCN can genuinely generalize. Trains
// on 10% of vertices, reports held-out accuracy, and shows mini-batch
// sampled training on the same data.
//
//   ./sbm_community [--vertices=600] [--communities=4] [--epochs=60]
#include <cmath>
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/minibatch.h"
#include "src/core/models/gcn.h"
#include "src/core/nn.h"
#include "src/core/train.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

int main(int argc, char** argv) {
  using namespace seastar;
  const int64_t n = FlagInt(argc, argv, "vertices", 600);
  const int32_t communities = static_cast<int32_t>(FlagInt(argc, argv, "communities", 4));
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 60));

  Rng rng(42);
  SbmResult sbm = StochasticBlockModel(n, communities, 0.08, 0.004, rng);
  AddSelfLoops(sbm.edges);

  Dataset data;
  data.spec.name = "sbm";
  data.spec.num_vertices = n;
  data.spec.num_classes = communities;
  data.spec.feature_dim = 16;
  data.graph = ToGraph(std::move(sbm.edges));
  data.spec.num_edges = data.graph.num_edges();
  data.features = ops::RandomNormal({n, 16}, 0.0f, 1.0f, rng);
  for (int64_t v = 0; v < n; ++v) {
    // Weak feature signal: one biased coordinate per community.
    data.features.at(v, sbm.labels[static_cast<size_t>(v)] % 16) += 1.5f;
  }
  data.labels = sbm.labels;
  data.gcn_norm = Tensor({n, 1});
  for (int64_t v = 0; v < n; ++v) {
    data.gcn_norm.at(v, 0) = 1.0f / std::sqrt(static_cast<float>(
                                  std::max<int64_t>(1, data.graph.InDegree(static_cast<int32_t>(v)))));
  }
  std::vector<int32_t> holdout;
  for (int64_t v = 0; v < n; ++v) {
    if (v % 10 == 0) {
      data.train_mask.push_back(static_cast<int32_t>(v));
    } else {
      holdout.push_back(static_cast<int32_t>(v));
    }
  }
  std::printf("SBM: %s, %d communities, train %zu / holdout %zu\n",
              data.graph.DebugString().c_str(), communities, data.train_mask.size(),
              holdout.size());

  // Full-graph training.
  std::shared_ptr<const Executor> executor = std::move(*ExecutorFactory::Create("seastar"));
  GcnConfig gcn;
  gcn.hidden_dim = 16;
  gcn.dropout = 0.3f;
  Gcn model(data, gcn, executor);
  TrainConfig train;
  train.epochs = epochs;
  TrainResult result = TrainNodeClassification(model, data, train);
  const float holdout_accuracy = Accuracy(model.Forward(false).value(), data.labels, holdout);
  std::printf("full-graph GCN : loss %.3f, train acc %.3f, HOLD-OUT acc %.3f (%.1f ms/epoch)\n",
              result.final_loss, result.train_accuracy, holdout_accuracy, result.avg_epoch_ms);

  // Mini-batch sampled training on the same data.
  MiniBatchConfig mini;
  mini.epochs = std::max(1, epochs / 10);
  mini.batch_size = 64;
  mini.fanouts = {10, 10};
  MiniBatchResult mini_result = TrainMiniBatchGcn(data, mini, executor);
  std::printf("mini-batch GCN : loss %.3f, seed acc %.3f (%d batches, %.1f ms/batch)\n",
              mini_result.final_loss, mini_result.seed_accuracy, mini_result.batches_run,
              mini_result.avg_batch_ms);
  return 0;
}
