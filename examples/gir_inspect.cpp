// Developer tool: prints the forward GIR, backward GIR, and fused execution
// plans for each built-in model's graph kernel — the Fig. 5/6 pipeline made
// visible. Useful for understanding what the tracer, autodiff, and fusion
// FSM produced for a given per-vertex program.
//
//   ./gir_inspect [--model=gat|gcn|appnp|rgcn|gin|sage] [--width=8]
#include <cstdio>
#include <string>

#include "src/common/string_util.h"
#include "src/core/program.h"

namespace seastar {
namespace {

GirBuilder BuildModelKernel(const std::string& model, int32_t width) {
  GirBuilder b;
  if (model == "gcn") {
    b.MarkOutput(AggSum(b.Src("h", width) * b.Src("norm", 1)), "out");
  } else if (model == "gat") {
    Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
    b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", width)), "out");
  } else if (model == "appnp") {
    Value prop = AggSum(b.Src("h", width) * b.Src("norm", 1)) * b.Dst("norm", 1);
    b.MarkOutput(prop * 0.9f + b.Dst("h0", width) * 0.1f, "out");
  } else if (model == "rgcn") {
    b.MarkOutput(AggSum(b.TypedSrc("wh", width) * b.Edge("norm", 1)), "out");
  } else if (model == "gin") {
    b.MarkOutput(AggSum(b.Src("h", width)) + b.Dst("h", width) * 1.0f, "out");
  } else if (model == "sage") {
    b.MarkOutput(AggMean(b.Src("h", width)), "out");
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    std::exit(1);
  }
  return b;
}

}  // namespace
}  // namespace seastar

int main(int argc, char** argv) {
  using namespace seastar;
  const std::string model = FlagValue(argc, argv, "model", "gat");
  const int32_t width = static_cast<int32_t>(FlagInt(argc, argv, "width", 8));

  std::printf("model: %s (feature width %d)\n\n", model.c_str(), width);
  VertexProgram program = VertexProgram::Compile(BuildModelKernel(model, width));
  std::fputs(program.DebugString().c_str(), stdout);
  std::printf(
      "\nlegend: %%id:TYPE[width] — S source-wise, D destination-wise, E edge-wise,\n"
      "P parameter; '*' marks materialized values; everything else lives in registers\n"
      "inside the fused kernel loop.\n");
  return 0;
}
