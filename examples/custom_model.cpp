// Custom-model example: the point of the vertex-centric frontend is that a
// *new* GNN layer is a few lines of per-vertex math, not a new CUDA kernel.
//
// Here we define a model that does not ship with DGL/PyG: an edge-weighted
// max-pool GNN with a gated residual,
//
//   m_v   = max_{u in N(v)} tanh(h_u * w_uv)          (max-pool aggregation)
//   gate  = sigmoid(AggMean of neighbors)             (soft degree gate)
//   h_v'  = m_v * gate + h_v
//
// written directly against GirBuilder, compiled once, differentiated by the
// GIR autodiff, and trained end-to-end. Run:
//
//   ./custom_model [--epochs=40]
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/nn.h"
#include "src/core/program.h"
#include "src/core/train.h"
#include "src/graph/datasets.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

class MaxPoolGnn : public GnnModel {
 public:
  MaxPoolGnn(const Dataset& data, int64_t hidden, std::shared_ptr<const Executor> executor)
      : data_(data), rng_(7) {
    session_ = MakeSession(std::move(executor), data.graph);
    in_layer_ = Linear(data.features.dim(1), hidden, /*with_bias=*/true, rng_);
    out_layer_ = Linear(hidden, data.spec.num_classes, /*with_bias=*/true, rng_);
    features_ = Var::Leaf(data.features, /*requires_grad=*/false);

    // Random (fixed) edge weights standing in for, e.g., interaction
    // strengths in a recommendation graph.
    edge_weight_ = Var::Leaf(
        ops::RandomUniform({data.graph.num_edges(), 1}, 0.5f, 1.5f, rng_), false);

    // The custom layer, written like the paper's UDFs: per-vertex math over
    // neighbors, types inferred, fusion automatic.
    GirBuilder b;
    Value h = b.Src("h", static_cast<int32_t>(hidden));
    Value w = b.Edge("w", 1);
    Value pooled = AggMax(Tanh(h * w));
    Value gate = Sigmoid(AggMean(h));
    b.MarkOutput(pooled * gate + b.Dst("h", static_cast<int32_t>(hidden)), "out");
    program_ = VertexProgram::Compile(std::move(b));
  }

  Var Forward(bool training) override {
    BindProfiler();
    Var h = ag::Relu(in_layer_.Forward(features_));
    h = program_.Run({.vertex = {{"h", h}}, .edge = {{"w", edge_weight_}}}, session());
    return out_layer_.Forward(h);
  }

  std::vector<Var> Parameters() const override {
    std::vector<Var> params = in_layer_.Parameters();
    for (const Var& p : out_layer_.Parameters()) {
      params.push_back(p);
    }
    return params;
  }

  const char* name() const override { return "MaxPoolGNN"; }

 private:
  const Dataset& data_;
  Rng rng_;
  Linear in_layer_;
  Linear out_layer_;
  Var features_;
  Var edge_weight_;
  VertexProgram program_;
};

}  // namespace
}  // namespace seastar

int main(int argc, char** argv) {
  using namespace seastar;
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 40));

  DatasetOptions options;
  options.max_feature_dim = 128;
  Dataset data = MakeDatasetByName("amz_photo", options);
  std::printf("dataset: %s\n", data.graph.DebugString().c_str());

  MaxPoolGnn model(data, /*hidden=*/32,
                   std::move(*ExecutorFactory::Create("seastar")));  // Seastar by default.

  TrainConfig train;
  train.epochs = epochs;
  train.verbose = true;
  TrainResult result = TrainNodeClassification(model, data, train);

  std::printf("\nfinal loss %.4f, train accuracy %.3f, %.2f ms/epoch\n", result.final_loss,
              result.train_accuracy, result.avg_epoch_ms);
  return 0;
}
