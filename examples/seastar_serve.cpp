// Closed-loop serving driver: boots a Server from a trained checkpoint and
// drives it with a paced request stream, optionally under injected faults,
// printing the survival story (served / degraded / shed / expired / failed,
// retry and breaker activity, latency percentiles) at the end.
//
//   ./seastar_serve --qps=2000 --deadline-ms=50 --requests=10000
//   ./seastar_serve --checkpoint=/tmp/gcn.ckpt --train-epochs=3
//   ./seastar_serve --checkpoint=/tmp/gcn.ckpt --train-epochs=2
//       --faults="ckpt_read:after=0:count=2;simt_worker:p=0.05"
//   ./seastar_serve --outage-at=2000 --outage-requests=500   # breaker drill
//
// Flags:
//   --model=gcn|gat|appnp|sgc   --dataset=<name>  --scale  --max-feat  --hidden
//   --requests=<n>       total requests to submit (default 10000)
//   --qps=<n>            submission rate (default 2000)
//   --deadline-ms=<ms>   per-request deadline (0 = server default, -1 = none)
//   --shed-at=<n>        admission queue capacity (default 64)
//   --max-batch / --batch-delay-ms    micro-batcher knobs
//   --max-retries / --backoff-ms      transient-fault retry policy
//   --trip-after / --probe-ms         circuit breaker knobs
//   --checkpoint=<path>  boot from this snapshot (with .prev fallback)
//   --train-epochs=<n>   train+save the snapshot first (default 2 when
//                        --checkpoint is set and the file doesn't exist)
//   --faults=<spec>      fault injector spec, armed *after* training so the
//                        faults hit serving, e.g. "alloc:p=0.02:seed=7"
//   --outage-at=<i>      arm a hard allocation outage when request i is
//   --outage-requests=<n>   submitted, lasting n requests: a guaranteed
//                        breaker trip + degraded window + probe recovery
//   --profile=<path>     Chrome-trace of the serving thread
//   --seed=<n>           request-stream RNG seed
//   --metrics-out=<p>    write the metrics-registry JSON snapshot on exit
//   --metrics-text=<p>   same data, Prometheus text exposition
//   --events-out=<p>     write the flight-recorder event dump on exit
//   --trace-out=<p>      write retained request traces (Chrome-trace JSON:
//                        one pid per tenant, one tid per request) on exit
//   --trace-sample=<r>   head sampling rate for clean requests (default
//                        0.01; anomalous and slowest requests are retained
//                        regardless, even at 0)
//
// Multi-tenant drill (--tenants > 1 activates it):
//   --tenants=<n>        serve n tenants ("tenant-0".."tenant-n-1"); tenants
//                        share model id "m0" except the rogue, which gets its
//                        own "m1" generation of the same architecture
//   --rogue=<i>          index of the misbehaving tenant (-1 = none;
//                        default 1 when --tenants >= 2)
//   --rogue-quota=<n>    the rogue's admission quota (max queued; default 8)
//   --rogue-mult=<x>     rogue submits x requests per scheduled slot (burst)
//   --rogue-faults=<s>   fault spec armed around the rogue's forwards only
//                        (default "alloc:p=0.5:seed=13")
//   --swap-at=<i>        hot-swap model m0 to a new weights version when
//                        request i is submitted (zero-downtime drill)
//   --assert-victim-p99-ms=<ms>  exit 4 if any non-rogue tenant's p99
//                        exceeds this bound (0 = off)
//
// Exit codes: 0 ok, 1 usage, 2 boot failure, 3 accounting-identity mismatch
// (global or any tenant), 4 victim p99 bound exceeded, 5 hot-swap violation
// (swap failed, or the post-flip steady state compiled plans / touched fresh
// memory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/common/tracing.h"
#include "src/core/checkpoint.h"
#include "src/core/executor_factory.h"
#include "src/core/models/appnp.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/models/sgc.h"
#include "src/core/train.h"
#include "src/exec/plan_cache.h"
#include "src/serve/model_registry.h"
#include "src/serve/server.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace {

std::unique_ptr<GnnModel> MakeModel(const std::string& name, const Dataset& data, int64_t hidden,
                                    std::shared_ptr<const Executor> executor) {
  if (name == "gcn") {
    GcnConfig config;
    if (hidden > 0) config.hidden_dim = hidden;
    return std::make_unique<Gcn>(data, config, std::move(executor));
  }
  if (name == "gat") {
    GatConfig config;
    if (hidden > 0) config.hidden_dim = hidden;
    return std::make_unique<Gat>(data, config, std::move(executor));
  }
  if (name == "appnp") {
    AppnpConfig config;
    if (hidden > 0) config.hidden_dim = hidden;
    return std::make_unique<Appnp>(data, config, std::move(executor));
  }
  if (name == "sgc") {
    return std::make_unique<Sgc>(data, SgcConfig{}, std::move(executor));
  }
  return nullptr;
}

int Run(int argc, char** argv) {
  const std::string model_name = FlagValue(argc, argv, "model", "gcn");
  const std::string dataset_name = FlagValue(argc, argv, "dataset", "cora");
  const double scale = FlagDouble(argc, argv, "scale", 0.25);
  const int64_t max_feat = FlagInt(argc, argv, "max-feat", 64);
  const int64_t hidden = FlagInt(argc, argv, "hidden", 0);
  const int64_t requests = FlagInt(argc, argv, "requests", 10000);
  const double qps = FlagDouble(argc, argv, "qps", 2000.0);
  const double deadline_ms = FlagDouble(argc, argv, "deadline-ms", 50.0);
  const int64_t shed_at = FlagInt(argc, argv, "shed-at", 64);
  const int64_t max_batch = FlagInt(argc, argv, "max-batch", 8);
  const double batch_delay_ms = FlagDouble(argc, argv, "batch-delay-ms", 1.0);
  const int64_t max_retries = FlagInt(argc, argv, "max-retries", 2);
  const double backoff_ms = FlagDouble(argc, argv, "backoff-ms", 0.5);
  const int64_t trip_after = FlagInt(argc, argv, "trip-after", 3);
  const double probe_ms = FlagDouble(argc, argv, "probe-ms", 25.0);
  const std::string checkpoint_path = FlagValue(argc, argv, "checkpoint", "");
  int64_t train_epochs = FlagInt(argc, argv, "train-epochs", -1);
  const std::string fault_spec = FlagValue(argc, argv, "faults", "");
  const int64_t outage_at = FlagInt(argc, argv, "outage-at", 0);
  const int64_t outage_requests = FlagInt(argc, argv, "outage-requests", 500);
  const std::string profile_path = FlagValue(argc, argv, "profile", "");
  const uint64_t seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 17));
  const std::string metrics_out = FlagValue(argc, argv, "metrics-out", "");
  const std::string metrics_text = FlagValue(argc, argv, "metrics-text", "");
  const std::string events_out = FlagValue(argc, argv, "events-out", "");
  const std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  const double trace_sample = FlagDouble(argc, argv, "trace-sample", 0.01);
  const int64_t num_tenants = FlagInt(argc, argv, "tenants", 1);
  const int64_t rogue_index = FlagInt(argc, argv, "rogue", num_tenants >= 2 ? 1 : -1);
  const int64_t rogue_quota = FlagInt(argc, argv, "rogue-quota", 8);
  const double rogue_mult = FlagDouble(argc, argv, "rogue-mult", 4.0);
  const std::string rogue_faults =
      FlagValue(argc, argv, "rogue-faults", "alloc:p=0.5:seed=13");
  const int64_t swap_at = FlagInt(argc, argv, "swap-at", 0);
  const double assert_victim_p99_ms = FlagDouble(argc, argv, "assert-victim-p99-ms", 0.0);
  const bool multi_tenant = num_tenants > 1;

  // A CHECK failure anywhere below dumps the flight-recorder ring and a
  // metrics snapshot to stderr before aborting.
  FlightRecorder::InstallCrashDump();

  if (requests <= 0 || qps <= 0.0) {
    std::fprintf(stderr, "--requests and --qps must be positive\n");
    return 1;
  }

  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = max_feat;
  StatusOr<Dataset> made = TryMakeDatasetByName(dataset_name, options);
  if (!made.has_value()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Dataset data = *std::move(made);

  std::unique_ptr<GnnModel> model =
      MakeModel(model_name, data, hidden, std::move(*ExecutorFactory::Create("seastar")));
  if (model == nullptr) {
    std::fprintf(stderr, "unknown --model '%s' (gcn|gat|appnp|sgc)\n", model_name.c_str());
    return 1;
  }

  // Produce the snapshot the server boots from, *before* arming any faults:
  // the drill is about serving surviving faults, not training.
  if (!checkpoint_path.empty()) {
    if (train_epochs < 0) {
      std::FILE* existing = std::fopen(checkpoint_path.c_str(), "rb");
      if (existing != nullptr) {
        std::fclose(existing);
        train_epochs = 0;  // Reuse what's there.
      } else {
        train_epochs = 2;
      }
    }
    if (train_epochs > 0) {
      TrainConfig train;
      train.epochs = static_cast<int>(train_epochs);
      train.warmup_epochs = 0;
      train.verbose = false;
      train.checkpoint_path = checkpoint_path;
      train.checkpoint_every = 1;
      TrainResult trained = TrainNodeClassification(*model, data, train);
      if (trained.failed) {
        std::fprintf(stderr, "snapshot training failed: %s\n", trained.error.c_str());
        return 1;
      }
      std::printf("trained snapshot: %d epochs, loss %.4f -> %s\n", trained.epochs_run,
                  trained.final_loss, checkpoint_path.c_str());
    }
  }

  if (!fault_spec.empty()) {
    std::string fault_error;
    if (!FaultInjector::Get().ConfigureFromSpec(fault_spec, &fault_error)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", fault_error.c_str());
      return 1;
    }
  }

  Profiler profiler(!profile_path.empty());
  serve::ServeConfig config;
  config.queue_capacity = static_cast<int>(shed_at);
  config.default_deadline_ms = deadline_ms > 0.0 ? deadline_ms : 100.0;
  config.max_batch = static_cast<int>(max_batch);
  config.max_batch_delay_ms = batch_delay_ms;
  config.max_retries = static_cast<int>(max_retries);
  config.retry_base_backoff_ms = backoff_ms;
  config.breaker_trip_after = static_cast<int>(trip_after);
  config.breaker_probe_interval_ms = probe_ms;
  config.checkpoint_path = checkpoint_path;
  config.profiler = profile_path.empty() ? nullptr : &profiler;
  config.tracing.head_sample_rate = trace_sample;
  config.tracing.seed = seed;
  // The drill's verdicts quote "every anomalous request is in the export":
  // size the anomaly ring to the worst case (every submission anomalous,
  // including the rogue's burst copies) so nothing is ring-evicted.
  const int64_t max_submissions =
      requests * std::max<int64_t>(1, static_cast<int64_t>(rogue_mult) + 1);
  config.tracing.anomaly_keep =
      static_cast<int>(std::max<int64_t>(config.tracing.anomaly_keep, max_submissions));

  // Multi-tenant drill topology: every tenant is served by model id "m0"
  // except the rogue, which runs its own "m1" generation of the same
  // architecture — its breaker and degraded path are cleanly its own.
  std::vector<std::string> tenant_names;
  std::string rogue_name;
  auto registry = std::make_shared<serve::ModelRegistry>();
  if (multi_tenant) {
    const auto factory = [&]() -> std::unique_ptr<GnnModel> {
      return MakeModel(model_name, data, hidden, std::move(*ExecutorFactory::Create("seastar")));
    };
    if (!registry->Register("m0", data, factory).has_value()) {
      std::fprintf(stderr, "failed to register m0\n");
      return 2;
    }
    if (rogue_index >= 0 && rogue_index < num_tenants &&
        !registry->Register("m1", data, factory).has_value()) {
      std::fprintf(stderr, "failed to register m1\n");
      return 2;
    }
    for (int64_t i = 0; i < num_tenants; ++i) {
      serve::TenantConfig tenant;
      tenant.name = "tenant-" + std::to_string(i);
      tenant_names.push_back(tenant.name);
      if (i == rogue_index) {
        rogue_name = tenant.name;
        tenant.model_id = "m1";
        tenant.max_queued = static_cast<int>(rogue_quota);
        tenant.fault_spec = rogue_faults;
      } else {
        tenant.model_id = "m0";
      }
      config.tenants.push_back(std::move(tenant));
    }
  }

  std::unique_ptr<serve::Server> server_owner;
  if (multi_tenant) {
    server_owner = std::make_unique<serve::Server>(registry, config);
  } else {
    server_owner = std::make_unique<serve::Server>(*model, data, config);
  }
  serve::Server& server = *server_owner;
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n", started.ToString().c_str());
    return 2;
  }
  std::printf("serving %s on %s (N=%lld): %lld requests at %.0f qps, deadline %.1f ms, queue %lld\n",
              model->name(), data.spec.name.c_str(),
              static_cast<long long>(data.graph.num_vertices()),
              static_cast<long long>(requests), qps, deadline_ms,
              static_cast<long long>(shed_at));
  if (multi_tenant) {
    std::printf("tenants: %lld (rogue: %s, quota %lld, burst x%.1f, faults \"%s\"; swap m0 at request %lld)\n",
                static_cast<long long>(num_tenants),
                rogue_name.empty() ? "none" : rogue_name.c_str(),
                static_cast<long long>(rogue_quota), rogue_mult, rogue_faults.c_str(),
                static_cast<long long>(swap_at));
  }

  // Stage the hot-swap snapshot up front (v2 = m0's current weights, tagged)
  // so the mid-run swap only loads and flips.
  const std::string swap_ckpt =
      checkpoint_path.empty() ? "/tmp/seastar_serve_swap.ckpt"
                              : CheckpointPathForModel(checkpoint_path, "m0.v2");
  std::future<StatusOr<int64_t>> swap_future;
  if (multi_tenant && swap_at > 0) {
    TrainCheckpoint snapshot;
    snapshot.model_tag = "m0";
    for (const Var& p : registry->Lookup("m0")->model().Parameters()) {
      snapshot.parameters.push_back(p.value().Clone());
    }
    Status staged = SaveCheckpoint(snapshot, swap_ckpt);
    if (!staged.ok()) {
      std::fprintf(stderr, "failed to stage swap checkpoint: %s\n", staged.ToString().c_str());
      return 2;
    }
  }

  // Closed-loop client: submit on a fixed-interval schedule, collect every
  // future afterwards (shed/invalid futures are already fulfilled). In the
  // multi-tenant drill, slots rotate round-robin across tenants and the
  // rogue bursts `rogue_mult` submissions per slot — the pressure its quota
  // must absorb.
  Rng rng(seed);
  const int64_t num_vertices = data.graph.num_vertices();
  std::vector<std::future<StatusOr<serve::InferenceResponse>>> futures;
  std::vector<int> future_tenant;  // Parallel to `futures`; -1 pre-tenancy.
  futures.reserve(static_cast<size_t>(requests));
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / qps));
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(t0 + i * interval);
    if (outage_at > 0 && i == outage_at) {
      std::printf("!! outage: hard allocation faults for the next %lld requests\n",
                  static_cast<long long>(outage_requests));
      FaultInjector::Get().Arm(FaultSite::kTensorAlloc, 0, /*count=*/1'000'000'000);
    }
    if (outage_at > 0 && i == outage_at + outage_requests) {
      FaultInjector::Get().Disarm(FaultSite::kTensorAlloc);
      std::printf("!! outage over (breaker now probes its way back)\n");
    }
    if (multi_tenant && swap_at > 0 && i == swap_at) {
      std::printf("!! hot-swap: staging m0 v2 (serving continues)\n");
      swap_future = server.RequestHotSwap("m0", swap_ckpt);
    }
    const int tenant = multi_tenant ? static_cast<int>(i % num_tenants) : -1;
    const int copies =
        (tenant >= 0 && tenant == rogue_index) ? std::max(1, static_cast<int>(rogue_mult)) : 1;
    for (int c = 0; c < copies; ++c) {
      serve::InferenceRequest request;
      const int fan = 1 + static_cast<int>(rng.NextBounded(4));
      for (int v = 0; v < fan; ++v) {
        request.vertices.push_back(
            static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
      }
      request.deadline_ms = deadline_ms;
      if (tenant >= 0) {
        request.tenant = tenant_names[static_cast<size_t>(tenant)];
      }
      futures.push_back(server.Submit(std::move(request)));
      future_tenant.push_back(tenant);
    }
  }

  int64_t ok = 0, degraded = 0, shed = 0, expired = 0, unavailable = 0, other = 0;
  int64_t retried_requests = 0;
  double worst_ms = -1.0;  // Slowest answered request, for the trace drill.
  uint64_t worst_trace = 0;
  bool worst_sampled = false;
  for (auto& future : futures) {
    StatusOr<serve::InferenceResponse> result = future.get();
    if (result.has_value()) {
      if (result->degraded) {
        ++degraded;
      } else {
        ++ok;
      }
      if (result->retries > 0) {
        ++retried_requests;
      }
      if (result->total_ms > worst_ms) {
        worst_ms = result->total_ms;
        worst_trace = result->trace_id;
        worst_sampled = result->sampled;
      }
    } else {
      switch (result.status().code()) {
        case StatusCode::kResourceExhausted:
          ++shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++expired;
          break;
        case StatusCode::kUnavailable:
          ++unavailable;
          break;
        default:
          ++other;
          break;
      }
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Hot-swap verification, while the server is still live: the swap future
  // must have resolved to version 2, and the post-flip steady state must
  // reuse every plan and pool block (same architecture -> nothing compiles,
  // nothing fresh-mallocs). A few settle forwards absorb the one-off warmup
  // traffic shapes before the measured window.
  int swap_verdict = 0;  // 0 ok, else exit code 5.
  if (multi_tenant && swap_at > 0) {
    StatusOr<int64_t> swapped = swap_future.get();
    if (!swapped.has_value()) {
      std::fprintf(stderr, "HOT-SWAP FAILED: %s\n", swapped.status().ToString().c_str());
      swap_verdict = 5;
    } else if (*swapped != 2) {
      std::fprintf(stderr, "HOT-SWAP: unexpected version %lld (want 2)\n",
                   static_cast<long long>(*swapped));
      swap_verdict = 5;
    } else {
      auto probe_once = [&]() -> StatusOr<serve::InferenceResponse> {
        serve::InferenceRequest request;
        request.tenant = tenant_names[0];
        request.vertices.push_back(
            static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
        request.deadline_ms = -1.0;
        return server.Infer(std::move(request));
      };
      for (int i = 0; i < 3; ++i) (void)probe_once();  // Settle.
      const uint64_t misses_before = PlanCache::Get().misses();
      const uint64_t mallocs_before = TensorAllocator::Get().fresh_mallocs();
      int64_t fresh_answers = 0;
      for (int i = 0; i < 5; ++i) {
        StatusOr<serve::InferenceResponse> answer = probe_once();
        if (answer.has_value() && !answer->degraded && answer->model_version == 2) {
          ++fresh_answers;
        }
      }
      const uint64_t miss_delta = PlanCache::Get().misses() - misses_before;
      const uint64_t malloc_delta = TensorAllocator::Get().fresh_mallocs() - mallocs_before;
      std::printf("hot-swap steady state: %lld/5 fresh v2 answers, plan misses +%llu, fresh mallocs +%llu\n",
                  static_cast<long long>(fresh_answers),
                  static_cast<unsigned long long>(miss_delta),
                  static_cast<unsigned long long>(malloc_delta));
      if (fresh_answers != 5 || miss_delta != 0 || malloc_delta != 0) {
        std::fprintf(stderr, "HOT-SWAP: post-flip steady state not warm\n");
        swap_verdict = 5;
      }
    }
  }

  server.Shutdown();
  FaultInjector::Get().DisarmAll();

  const serve::ServerStats stats = server.stats();
  const serve::LatencySummary latency = server.latency_summary();
  std::printf("\n--- client view (%lld requests in %.2f s, %.0f qps achieved) ---\n",
              static_cast<long long>(requests), wall_s,
              static_cast<double>(requests) / wall_s);
  std::printf("fresh %lld | degraded %lld | shed %lld | expired %lld | unavailable %lld | other %lld\n",
              static_cast<long long>(ok), static_cast<long long>(degraded),
              static_cast<long long>(shed), static_cast<long long>(expired),
              static_cast<long long>(unavailable), static_cast<long long>(other));
  std::printf("requests that paid retries: %lld\n", static_cast<long long>(retried_requests));
  if (worst_trace != 0) {
    // The tail reservoir guarantees this trace is in the export even when
    // the head sampler skipped it: the slowest-N competition is exactly what
    // an unsampled-but-slow request wins.
    std::printf("slowest answered request: %.2f ms, trace %s%s\n", worst_ms,
                trace::TraceIdHex(worst_trace).c_str(),
                worst_sampled ? " (head-sampled)" : " (tail-retained)");
  }
  std::printf("\n--- server view ---\n");
  std::printf("submitted %lld = served %lld + degraded %lld + shed %lld + expired %lld + failed %lld\n",
              static_cast<long long>(stats.submitted), static_cast<long long>(stats.served),
              static_cast<long long>(stats.degraded), static_cast<long long>(stats.shed),
              static_cast<long long>(stats.expired), static_cast<long long>(stats.failed));
  std::printf("forward passes %lld | retries %lld | unit-boundary deadline aborts %lld | boot retries %lld\n",
              static_cast<long long>(stats.batches), static_cast<long long>(stats.retries),
              static_cast<long long>(stats.deadline_unit_aborts),
              static_cast<long long>(stats.boot_retries));
  std::printf("breaker: trips %lld, probes %lld, recoveries %lld (state now: %s)\n",
              static_cast<long long>(stats.breaker_trips),
              static_cast<long long>(stats.breaker_probes),
              static_cast<long long>(stats.breaker_recoveries),
              serve::BreakerStateName(server.breaker_state()));
  std::printf("latency over %lld answers: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              static_cast<long long>(latency.count), latency.p50_ms, latency.p95_ms,
              latency.p99_ms, latency.max_ms);
  std::printf("traces: %lld started, %lld head-sampled, %lld anomalous; retained %lld anomaly + "
              "%lld sampled + %lld tail (spans dropped %lld)\n",
              static_cast<long long>(stats.trace.started),
              static_cast<long long>(stats.trace.head_sampled),
              static_cast<long long>(stats.trace.anomalies_observed),
              static_cast<long long>(stats.trace.retained_anomaly),
              static_cast<long long>(stats.trace.retained_sampled),
              static_cast<long long>(stats.trace.retained_tail),
              static_cast<long long>(stats.trace.spans_dropped));
  if (multi_tenant) {
    std::printf("hot-swaps: %lld flipped, %lld failed, %lld old generations retired\n",
                static_cast<long long>(stats.swaps), static_cast<long long>(stats.swap_failures),
                static_cast<long long>(stats.swap_retired));
  }

  // Per-tenant accounting and QoS verdicts. Every tenant must satisfy the
  // identity exactly; non-rogue tenants must additionally stay inside the
  // p99 bound when one was asserted.
  int tenant_identity_verdict = 0;  // 0 ok, else exit code 3.
  int victim_p99_verdict = 0;       // 0 ok, else exit code 4.
  if (multi_tenant) {
    std::printf("\n--- per-tenant view ---\n");
    for (const std::string& name : server.tenant_names()) {
      const serve::TenantStats t = *server.tenant_stats(name);
      const serve::LatencySummary lat = *server.tenant_latency_summary(name);
      const char* breaker = serve::BreakerStateName(*server.tenant_breaker_state(name));
      const bool rogue = (name == rogue_name);
      std::printf(
          "%s%s: submitted %lld = served %lld + degraded %lld + shed %lld (quota %lld) + "
          "expired %lld + failed %lld | retries %lld | breaker %s (trips %lld) | "
          "p50 %.2f ms p99 %.2f ms\n",
          name.c_str(), rogue ? " [rogue]" : "", static_cast<long long>(t.submitted),
          static_cast<long long>(t.served), static_cast<long long>(t.degraded),
          static_cast<long long>(t.shed), static_cast<long long>(t.quota_shed),
          static_cast<long long>(t.expired), static_cast<long long>(t.failed),
          static_cast<long long>(t.retries), breaker, static_cast<long long>(t.breaker_trips),
          lat.p50_ms, lat.p99_ms);
      const int64_t t_accounted = t.served + t.degraded + t.shed + t.expired + t.failed;
      if (t_accounted != t.submitted) {
        std::fprintf(stderr, "TENANT ACCOUNTING MISMATCH (%s): submitted %lld != accounted %lld\n",
                     name.c_str(), static_cast<long long>(t.submitted),
                     static_cast<long long>(t_accounted));
        tenant_identity_verdict = 3;
      }
      if (!rogue && assert_victim_p99_ms > 0.0 && lat.p99_ms > assert_victim_p99_ms) {
        std::fprintf(stderr, "VICTIM P99 EXCEEDED (%s): %.2f ms > %.2f ms\n", name.c_str(),
                     lat.p99_ms, assert_victim_p99_ms);
        victim_p99_verdict = 4;
      }
    }
  }

  if (!profile_path.empty()) {
    if (profiler.WriteChromeTrace(profile_path)) {
      std::printf("profile: %zu spans -> %s\n", profiler.events().size(), profile_path.c_str());
    } else {
      std::fprintf(stderr, "profile: failed to write %s\n", profile_path.c_str());
    }
  }

  metrics::MetricsRegistry& metrics_registry = metrics::MetricsRegistry::Get();
  if (!metrics_out.empty()) {
    if (metrics_registry.WriteJsonFile(metrics_out)) {
      std::printf("metrics: %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", metrics_out.c_str());
    }
  }
  if (!metrics_text.empty()) {
    if (metrics_registry.WriteTextFile(metrics_text)) {
      std::printf("metrics: %s\n", metrics_text.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", metrics_text.c_str());
    }
  }
  if (!events_out.empty()) {
    if (FlightRecorder::Get().DumpToFile(events_out)) {
      std::printf("events: %s\n", events_out.c_str());
    } else {
      std::fprintf(stderr, "events: failed to write %s\n", events_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    if (server.DumpTraces(trace_out)) {
      std::printf("traces: %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "traces: failed to write %s\n", trace_out.c_str());
    }
  }

  if (multi_tenant && swap_at > 0 && swap_verdict == 0 &&
      (stats.swaps != 1 || stats.swap_failures != 0)) {
    std::fprintf(stderr, "HOT-SWAP: expected exactly 1 clean swap, saw %lld (failures %lld)\n",
                 static_cast<long long>(stats.swaps),
                 static_cast<long long>(stats.swap_failures));
    swap_verdict = 5;
  }
  if (multi_tenant && swap_at > 0) {
    std::remove(swap_ckpt.c_str());
    std::remove((swap_ckpt + ".prev").c_str());
  }

  const int64_t accounted =
      stats.served + stats.degraded + stats.shed + stats.expired + stats.failed;
  if (accounted != stats.submitted) {
    std::fprintf(stderr, "ACCOUNTING MISMATCH: submitted %lld != accounted %lld\n",
                 static_cast<long long>(stats.submitted), static_cast<long long>(accounted));
    std::fprintf(stderr, "--- flight recorder ---\n%s", FlightRecorder::Get().Dump().c_str());
    return 3;
  }
  if (tenant_identity_verdict != 0) {
    std::fprintf(stderr, "--- flight recorder ---\n%s", FlightRecorder::Get().Dump().c_str());
    return tenant_identity_verdict;
  }
  if (victim_p99_verdict != 0) return victim_p99_verdict;
  if (swap_verdict != 0) return swap_verdict;
  return 0;
}

}  // namespace
}  // namespace seastar

int main(int argc, char** argv) { return seastar::Run(argc, argv); }
