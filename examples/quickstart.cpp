// Quickstart: train a 2-layer GCN on a cora-sized synthetic citation graph
// with the Seastar backend.
//
//   ./quickstart [--epochs=50] [--backend=seastar|dgl|pyg|sharded:N] [--scale=1.0]
//               [--checkpoint=gcn.ckpt] [--resume]
//
// With --checkpoint the run snapshots its full training state (parameters,
// Adam moments, RNG stream, epoch) every 10 epochs, atomically; kill it at
// any point and re-run with --resume to continue to the same final loss as
// an uninterrupted run. See docs/INTERNALS.md §9.
//
// The model's graph kernel is the one-liner of the paper's Fig. 3:
//
//   return sum([u.h * u.norm for u in v.innbs])
//
// compiled by VertexProgram::Compile into two fused GPU-style kernels
// (forward + backward) and differentiated automatically.
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/core/train.h"

int main(int argc, char** argv) {
  using namespace seastar;

  const int64_t epochs = FlagInt(argc, argv, "epochs", 50);
  const std::string backend_name = FlagValue(argc, argv, "backend", "seastar");
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const std::string checkpoint_path = FlagValue(argc, argv, "checkpoint", "");
  const bool resume = FlagBool(argc, argv, "resume", false);
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=<path>\n");
    return 1;
  }

  // 1. Data: a synthetic stand-in for cora (same |V|, |E|, feature width).
  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 256;
  Dataset data = MakeDatasetByName("cora", options);
  std::printf("dataset: %s  %s\n", data.spec.name.c_str(), data.graph.DebugString().c_str());

  // 2. Model: 2-layer GCN, hidden 16, on the chosen executor.
  StatusOr<std::unique_ptr<Executor>> executor = ExecutorFactory::Create(backend_name);
  if (!executor.has_value()) {
    std::fprintf(stderr, "%s\n", executor.status().ToString().c_str());
    return 1;
  }
  GcnConfig config;
  Gcn model(data, config, std::move(*executor));

  // 3. Train with the paper's protocol (cross-entropy on the train mask).
  TrainConfig train;
  train.epochs = static_cast<int>(epochs);
  train.warmup_epochs = 3;
  train.verbose = true;
  train.checkpoint_path = checkpoint_path;
  train.checkpoint_every = checkpoint_path.empty() ? 0 : 10;
  train.resume = resume;
  TrainResult result = TrainNodeClassification(model, data, train);
  if (result.failed) {
    std::fprintf(stderr, "training failed: %s\n", result.error.c_str());
    return 2;
  }

  std::printf("\nbackend           : %s\n", model.session().executor().name());
  std::printf("epochs            : %d\n", result.epochs_run);
  std::printf("avg epoch time    : %.2f ms\n", result.avg_epoch_ms);
  std::printf("final train loss  : %.4f\n", result.final_loss);
  std::printf("train accuracy    : %.3f\n", result.train_accuracy);
  std::printf("peak tensor memory: %s\n", HumanBytes(result.peak_bytes).c_str());
  return 0;
}
