// General-purpose training driver: any model × any dataset × any backend
// from the command line, with optional CSV output for scripting sweeps.
//
//   ./seastar_train --model=gcn --dataset=cora --backend=seastar
//   ./seastar_train --model=gcn --dataset=cora --backend=sharded:4
//   ./seastar_train --model=gat --dataset=amz_photo --backend=pyg --epochs=20
//   ./seastar_train --model=rgcn --dataset=aifb --rgcn-mode=dgl-bmm
//   ./seastar_train --model=sage --dataset=pubmed --csv
//
// Flags: --model=gcn|gat|appnp|rgcn|sage|gin|sgc  --dataset=<table-2 name>
//        --executor=seastar|seastar-nofuse|dgl|pyg|sharded[:N]  (alias: --backend=)
//        --epochs --warmup --lr
//        --scale --max-feat --hidden --budget-gb --csv
//        --edges=<file.tsv|file.mtx>  (train on your own graph instead)
//        --profile=<trace.json>  (Chrome-trace of the run; see docs/INTERNALS.md)
//
// Fault tolerance (docs/INTERNALS.md §9):
//        --checkpoint=<path>       checkpoint file (written atomically)
//        --checkpoint-every=<n>    snapshot cadence in epochs (default 10)
//        --resume                  restore from --checkpoint before training
//        --max-retries=<n>         rollback + lr-backoff budget (default 3)
//        --faults=<spec>           arm the fault injector, e.g. "alloc:after=100"
//
// Observability (docs/INTERNALS.md §12):
//        --metrics-out=<path>      metrics-registry JSON snapshot on exit
//        --metrics-text=<path>     same data, Prometheus text exposition
//        --events-out=<path>       flight-recorder event dump on exit
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "src/common/fault.h"
#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/appnp.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/models/gin.h"
#include "src/core/models/rgcn.h"
#include "src/core/models/sage.h"
#include "src/core/models/sgc.h"
#include "src/core/train.h"
#include "src/graph/io.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

RgcnMode RgcnModeFromString(const std::string& name) {
  if (name == "seastar") {
    return RgcnMode::kSeastar;
  }
  if (name == "dgl-bmm") {
    return RgcnMode::kDglBmm;
  }
  if (name == "pyg-bmm") {
    return RgcnMode::kPygBmm;
  }
  if (name == "dgl") {
    return RgcnMode::kDglSequential;
  }
  if (name == "pyg") {
    return RgcnMode::kPygSequential;
  }
  SEASTAR_LOG(Fatal) << "unknown --rgcn-mode '" << name
                     << "' (seastar|dgl-bmm|pyg-bmm|dgl|pyg)";
  return RgcnMode::kSeastar;
}

// Wraps a user-supplied edge list as a Dataset with synthetic features.
StatusOr<Dataset> DatasetFromEdgeFile(const std::string& path, int64_t feature_dim,
                                      int64_t num_classes) {
  StatusOr<Graph> graph = StartsWith(path, "mm:") || path.ends_with(".mtx")
                              ? LoadMatrixMarket(path)
                              : LoadEdgeListTsv(path);
  if (!graph.has_value()) {
    return graph.status();
  }
  Dataset data;
  data.spec.name = path;
  data.spec.num_vertices = graph->num_vertices();
  data.spec.num_edges = graph->num_edges();
  data.spec.feature_dim = feature_dim;
  data.spec.num_classes = num_classes;
  data.spec.num_relations = graph->num_edge_types();
  data.graph = std::move(*graph);
  Rng rng(7);
  data.features = ops::RandomNormal({data.spec.num_vertices, feature_dim}, 0, 1, rng);
  data.gcn_norm = Tensor({data.spec.num_vertices, 1});
  for (int64_t v = 0; v < data.spec.num_vertices; ++v) {
    data.gcn_norm.at(v, 0) =
        1.0f / std::sqrt(static_cast<float>(
                   std::max<int64_t>(1, data.graph.InDegree(static_cast<int32_t>(v)))));
  }
  data.labels.resize(static_cast<size_t>(data.spec.num_vertices));
  for (int64_t v = 0; v < data.spec.num_vertices; ++v) {
    data.labels[static_cast<size_t>(v)] =
        static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_classes)));
    if (rng.NextBernoulli(0.1)) {
      data.train_mask.push_back(static_cast<int32_t>(v));
    }
  }
  if (data.train_mask.empty()) {
    data.train_mask.push_back(0);
  }
  return data;
}

int Run(int argc, char** argv) {
  const std::string model_name = FlagValue(argc, argv, "model", "gcn");
  const std::string dataset_name = FlagValue(argc, argv, "dataset", "cora");
  // --executor= is the canonical spelling (it names an ExecutorFactory
  // spec); --backend= remains as the historical alias.
  const std::string backend_name =
      FlagValue(argc, argv, "executor", FlagValue(argc, argv, "backend", "seastar"));
  const std::string edge_file = FlagValue(argc, argv, "edges", "");
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 30));
  const int warmup = static_cast<int>(FlagInt(argc, argv, "warmup", 3));
  const float lr = static_cast<float>(FlagDouble(argc, argv, "lr", 1e-2));
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const int64_t max_feat = FlagInt(argc, argv, "max-feat", 256);
  const int64_t hidden = FlagInt(argc, argv, "hidden", 0);  // 0 = model default.
  const double budget_gb = FlagDouble(argc, argv, "budget-gb", 0.0);
  const bool csv = FlagBool(argc, argv, "csv", false);
  const std::string profile_path = FlagValue(argc, argv, "profile", "");
  const std::string checkpoint_path = FlagValue(argc, argv, "checkpoint", "");
  const int64_t checkpoint_every = FlagInt(argc, argv, "checkpoint-every", 10);
  const bool resume = FlagBool(argc, argv, "resume", false);
  const int64_t max_retries = FlagInt(argc, argv, "max-retries", 3);
  const std::string fault_spec = FlagValue(argc, argv, "faults", "");
  const std::string metrics_out = FlagValue(argc, argv, "metrics-out", "");
  const std::string metrics_text = FlagValue(argc, argv, "metrics-text", "");
  const std::string events_out = FlagValue(argc, argv, "events-out", "");

  // A CHECK failure anywhere below dumps the flight-recorder ring and a
  // metrics snapshot to stderr before aborting.
  FlightRecorder::InstallCrashDump();

  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=<path>\n");
    return 1;
  }
  if (checkpoint_every <= 0) {
    std::fprintf(stderr, "--checkpoint-every must be positive (got %lld)\n",
                 static_cast<long long>(checkpoint_every));
    return 1;
  }
  if (max_retries < 0) {
    std::fprintf(stderr, "--max-retries must be non-negative (got %lld)\n",
                 static_cast<long long>(max_retries));
    return 1;
  }
  if (!fault_spec.empty()) {
    std::string fault_error;
    if (!FaultInjector::Get().ConfigureFromSpec(fault_spec, &fault_error)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", fault_error.c_str());
      return 1;
    }
  }
  FaultInjector::Get().ConfigureFromEnv();

  Dataset data;
  if (!edge_file.empty()) {
    StatusOr<Dataset> loaded = DatasetFromEdgeFile(edge_file, max_feat, 8);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load --edges graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = *std::move(loaded);
  } else {
    DatasetOptions options;
    options.scale = scale;
    options.max_feature_dim = max_feat;
    options.add_self_loops = model_name != "rgcn";
    StatusOr<Dataset> made = TryMakeDatasetByName(dataset_name, options);
    if (!made.has_value()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    data = *std::move(made);
  }

  StatusOr<std::unique_ptr<Executor>> created = ExecutorFactory::Create(backend_name);
  if (!created.has_value()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const Executor> executor = std::move(*created);

  std::unique_ptr<GnnModel> model;
  if (model_name == "gcn") {
    GcnConfig config;
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    model = std::make_unique<Gcn>(data, config, executor);
  } else if (model_name == "gat") {
    GatConfig config;
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    model = std::make_unique<Gat>(data, config, executor);
  } else if (model_name == "appnp") {
    AppnpConfig config;
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    model = std::make_unique<Appnp>(data, config, executor);
  } else if (model_name == "rgcn") {
    RgcnConfig config;
    config.mode = RgcnModeFromString(FlagValue(argc, argv, "rgcn-mode", "seastar"));
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    model = std::make_unique<Rgcn>(data, config);
  } else if (model_name == "sage") {
    SageConfig config;
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    config.aggregator = FlagValue(argc, argv, "sage-agg", "mean") == "pool"
                            ? SageAggregator::kPool
                            : SageAggregator::kMean;
    model = std::make_unique<Sage>(data, config, executor);
  } else if (model_name == "gin") {
    GinConfig config;
    if (hidden > 0) {
      config.hidden_dim = hidden;
    }
    model = std::make_unique<Gin>(data, config, executor);
  } else if (model_name == "sgc") {
    SgcConfig config;
    model = std::make_unique<Sgc>(data, config, executor);
  } else {
    std::fprintf(stderr, "unknown --model '%s' (gcn|gat|appnp|rgcn|sage|gin|sgc)\n",
                 model_name.c_str());
    return 1;
  }

  TrainConfig train;
  train.epochs = epochs;
  train.warmup_epochs = warmup;
  train.learning_rate = lr;
  train.verbose = !csv;
  train.checkpoint_path = checkpoint_path;
  train.checkpoint_every = checkpoint_path.empty() ? 0 : static_cast<int>(checkpoint_every);
  train.resume = resume;
  train.max_retries = static_cast<int>(max_retries);
  if (budget_gb > 0.0) {
    train.memory_budget_bytes = static_cast<uint64_t>(budget_gb * 1024.0 * 1024.0 * 1024.0);
  }
  Profiler profiler(!profile_path.empty());
  if (!profile_path.empty()) {
    train.profiler = &profiler;
  }
  TrainResult result = TrainNodeClassification(*model, data, train);

  // Dump observability artifacts on both the success and failure paths: a
  // failed run is exactly when the snapshot and event ring matter most.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  if (!metrics_out.empty() && !registry.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "metrics: failed to write %s\n", metrics_out.c_str());
  }
  if (!metrics_text.empty() && !registry.WriteTextFile(metrics_text)) {
    std::fprintf(stderr, "metrics: failed to write %s\n", metrics_text.c_str());
  }
  if (!events_out.empty() && !FlightRecorder::Get().DumpToFile(events_out)) {
    std::fprintf(stderr, "events: failed to write %s\n", events_out.c_str());
  }

  for (const RecoveryEvent& event : result.recovery_events) {
    std::fprintf(stderr, "recovery: epoch %d %s (%s) retry %d -> rollback to epoch %d, lr %g\n",
                 event.epoch, event.kind.c_str(), event.detail.c_str(), event.retry,
                 event.rollback_epoch, event.lr_after);
  }
  if (result.failed) {
    std::fprintf(stderr, "training failed: %s\n", result.error.c_str());
    std::fprintf(stderr, "%s", FlightRecorder::Get().Dump().c_str());
    return 2;
  }

  if (!profile_path.empty()) {
    if (profiler.WriteChromeTrace(profile_path)) {
      std::printf("profile: %zu spans -> %s (open in chrome://tracing)\n",
                  profiler.events().size(), profile_path.c_str());
    } else {
      std::fprintf(stderr, "profile: failed to write %s\n", profile_path.c_str());
    }
    if (!csv) {
      std::printf("%s", profiler.SummaryTable().c_str());
    }
  }

  if (csv) {
    std::printf("model,dataset,backend,epochs,avg_epoch_ms,final_loss,train_acc,peak_mb,oom\n");
    std::printf("%s,%s,%s,%d,%.3f,%.5f,%.4f,%.2f,%d\n", model_name.c_str(),
                data.spec.name.c_str(), backend_name.c_str(), result.epochs_run,
                result.avg_epoch_ms, result.final_loss, result.train_accuracy,
                static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0),
                result.oom ? 1 : 0);
  } else {
    std::printf("\n%s on %s via %s: %d epochs, %.2f ms/epoch, loss %.4f, acc %.3f, peak %s%s\n",
                model->name(), data.spec.name.c_str(), model->session().executor().name(),
                result.epochs_run, result.avg_epoch_ms, result.final_loss,
                result.train_accuracy, HumanBytes(result.peak_bytes).c_str(),
                result.oom ? " [OOM]" : "");
    if (result.start_epoch > 0) {
      std::printf("resumed at epoch %d from %s\n", result.start_epoch, checkpoint_path.c_str());
    }
    if (result.checkpoints_written > 0) {
      std::printf("checkpoints: %d written to %s\n", result.checkpoints_written,
                  checkpoint_path.c_str());
    }
    if (result.rollbacks > 0) {
      std::printf("recoveries: %d rollback(s), final lr after backoff preserved in checkpoint\n",
                  result.rollbacks);
    }
  }
  return 0;
}

}  // namespace
}  // namespace seastar

int main(int argc, char** argv) { return seastar::Run(argc, argv); }
