// Runs GAT on one dataset under all four execution strategies and prints a
// mini version of the paper's Fig. 10 / Fig. 11 comparison: per-epoch time
// and peak tensor memory for Seastar (fused), Seastar without fusion, the
// DGL-like baseline, and the PyG-like baseline.
//
//   ./compare_backends [--dataset=amz_photo] [--epochs=10] [--scale=0.5]
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gat.h"
#include "src/core/train.h"

int main(int argc, char** argv) {
  using namespace seastar;

  const std::string dataset_name = FlagValue(argc, argv, "dataset", "amz_photo");
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 10));
  const double scale = FlagDouble(argc, argv, "scale", 0.5);

  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = 64;
  Dataset data = MakeDatasetByName(dataset_name, options);
  std::printf("dataset: %s\n\n", data.graph.DebugString().c_str());
  std::printf("%-16s %14s %14s %10s\n", "backend", "epoch (ms)", "peak memory", "loss");

  for (const char* spec : {"seastar", "seastar-nofuse", "dgl", "pyg"}) {
    StatusOr<std::unique_ptr<Executor>> executor = ExecutorFactory::Create(spec);
    SEASTAR_CHECK(executor.has_value()) << executor.status().ToString();
    GatConfig gat;
    gat.num_heads = 4;
    gat.hidden_dim = 8;
    Gat model(data, gat, std::move(*executor));
    TrainConfig train;
    train.epochs = epochs;
    train.warmup_epochs = 2;
    TrainResult result = TrainNodeClassification(model, data, train);
    std::printf("%-16s %14.2f %14s %10.4f\n", model.session().executor().name(),
                result.avg_epoch_ms, HumanBytes(result.peak_bytes).c_str(), result.final_loss);
  }
  return 0;
}
