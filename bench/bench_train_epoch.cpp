// Steady-state training cost: per-epoch wall time and allocator behaviour
// for GCN/GAT on the synthetic datasets under the Seastar backend.
//
// This is the perf-trajectory bench for ISSUE 3's steady-state work (pool
// allocator, plan cache, parallel pointwise layer): epoch 0 pays warmup
// (pool cold, plans uncompiled), epochs >= kSteadyFirstEpoch should run with
// ~zero fresh mallocs and zero plan-cache misses. Emits a machine-readable
// JSON report (--out=, default BENCH_train_epoch.json) so CI can assert the
// steady-state invariants and the numbers can be tracked across PRs.
//
// Flags (on top of the shared bench flags --datasets/--epochs/--warmup/
// --scale/--max-feat/--profile):
//   --models=gcn,gat   model filter (default: both)
//   --out=<path>       JSON report path (default: BENCH_train_epoch.json)
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/common/stopwatch.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"
#include "src/core/nn.h"
#include "src/exec/plan_cache.h"
#include "src/tensor/allocator.h"
#include "src/tensor/autograd.h"

namespace seastar {
namespace bench {
namespace {

// First epoch counted as steady state (0-based): epoch 0 warms the pool and
// the plan cache, epoch 1 absorbs any second-order effects (e.g. the
// backward graph's first full reuse), epoch 2+ must be steady.
constexpr int kSteadyFirstEpoch = 2;

struct EpochStats {
  double wall_ms = 0.0;
  uint64_t alloc_requests = 0;  // TensorAllocator::total_allocations delta.
  uint64_t fresh_mallocs = 0;   // Requests that reached std::malloc.
  uint64_t pool_hits = 0;
  uint64_t plan_misses = 0;  // PlanCache misses (compilations) this epoch.
  float loss = 0.0f;
};

struct RunReport {
  std::string model;
  std::string dataset;
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  std::vector<EpochStats> epochs;
  double steady_avg_ms = 0.0;
  double steady_fresh_mallocs = 0.0;
  double steady_alloc_requests = 0.0;
};

using ModelFactory =
    std::function<std::unique_ptr<GnnModel>(const Dataset&, std::shared_ptr<const Executor>)>;

RunReport RunOne(const std::string& model_name, const ModelFactory& factory,
                 const DatasetSpec& spec, const BenchOptions& options, Profiler* profiler) {
  Dataset data = LoadDataset(spec, options);
  std::unique_ptr<GnnModel> model =
      factory(data, std::move(*ExecutorFactory::Create("seastar")));
  model->SetProfiler(profiler);

  std::vector<Var> parameters = model->Parameters();
  Adam adam(parameters, /*lr=*/0.01f);

  TensorAllocator& allocator = TensorAllocator::Get();
  PlanCache& plans = PlanCache::Get();

  RunReport report;
  report.model = model_name;
  report.dataset = spec.name;
  report.num_vertices = data.spec.num_vertices;
  report.num_edges = data.spec.num_edges;

  const int epochs = options.epochs + options.warmup;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const uint64_t requests_before = allocator.total_allocations();
    const uint64_t mallocs_before = allocator.fresh_mallocs();
    const uint64_t hits_before = allocator.pool_hits();
    const uint64_t plan_misses_before = plans.misses();
    Stopwatch watch;

    ProfileScope epoch_span(profiler, spec.name + "/" + model_name + " epoch", "bench");
    Var logits = model->Forward(/*training=*/true);
    Var loss = ag::NllLoss(ag::LogSoftmax(logits), data.labels, data.train_mask);
    Backward(loss, Tensor::Ones({1}));
    adam.Step();
    adam.ZeroGrad();

    EpochStats stats;
    stats.wall_ms = watch.ElapsedMillis();
    stats.loss = loss.value().at(0);
    stats.alloc_requests = allocator.total_allocations() - requests_before;
    stats.fresh_mallocs = allocator.fresh_mallocs() - mallocs_before;
    stats.pool_hits = allocator.pool_hits() - hits_before;
    stats.plan_misses = plans.misses() - plan_misses_before;
    report.epochs.push_back(stats);
  }

  int steady = 0;
  for (size_t e = kSteadyFirstEpoch; e < report.epochs.size(); ++e) {
    report.steady_avg_ms += report.epochs[e].wall_ms;
    report.steady_fresh_mallocs += static_cast<double>(report.epochs[e].fresh_mallocs);
    report.steady_alloc_requests += static_cast<double>(report.epochs[e].alloc_requests);
    ++steady;
  }
  if (steady > 0) {
    report.steady_avg_ms /= steady;
    report.steady_fresh_mallocs /= steady;
    report.steady_alloc_requests /= steady;
  }
  model->SetProfiler(nullptr);
  return report;
}

void WriteReport(const std::string& path, const std::vector<RunReport>& reports) {
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "train_epoch");
  json.Field("steady_first_epoch", kSteadyFirstEpoch);
  json.Key("runs");
  json.BeginArray();
  for (const RunReport& report : reports) {
    json.BeginObject();
    json.Field("model", report.model);
    json.Field("dataset", report.dataset);
    json.Field("num_vertices", report.num_vertices);
    json.Field("num_edges", report.num_edges);
    json.FieldDouble("steady_avg_ms", report.steady_avg_ms, 3);
    json.FieldDouble("steady_fresh_mallocs", report.steady_fresh_mallocs, 1);
    json.FieldDouble("steady_alloc_requests", report.steady_alloc_requests, 1);
    json.Key("epochs");
    json.BeginArray();
    for (size_t e = 0; e < report.epochs.size(); ++e) {
      const EpochStats& stats = report.epochs[e];
      json.BeginObject();
      json.Field("epoch", static_cast<int64_t>(e));
      json.FieldDouble("wall_ms", stats.wall_ms, 3);
      json.Field("alloc_requests", static_cast<uint64_t>(stats.alloc_requests));
      json.Field("fresh_mallocs", static_cast<uint64_t>(stats.fresh_mallocs));
      json.Field("pool_hits", static_cast<uint64_t>(stats.pool_hits));
      json.Field("plan_misses", static_cast<uint64_t>(stats.plan_misses));
      json.FieldDouble("loss", stats.loss, 6);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (json.WriteToFile(path)) {
    std::printf("\nreport: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

int Main(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  const std::string out_path = FlagValue(argc, argv, "out", "BENCH_train_epoch.json");
  const std::string model_filter = FlagValue(argc, argv, "models", "gcn,gat");
  BenchProfile profile(options);

  std::vector<std::pair<std::string, ModelFactory>> models;
  for (const std::string& name : Split(model_filter, ',')) {
    if (name == "gcn") {
      models.emplace_back("GCN", [](const Dataset& data, std::shared_ptr<const Executor> executor) {
        GcnConfig gcn;
        gcn.hidden_dim = 16;
        return std::unique_ptr<GnnModel>(new Gcn(data, gcn, std::move(executor)));
      });
    } else if (name == "gat") {
      models.emplace_back("GAT", [](const Dataset& data, std::shared_ptr<const Executor> executor) {
        GatConfig gat;
        return std::unique_ptr<GnnModel>(new Gat(data, gat, std::move(executor)));
      });
    } else {
      std::fprintf(stderr, "unknown model '%s' (expected gcn/gat)\n", name.c_str());
      return 1;
    }
  }

  std::printf("steady-state per-epoch training cost (Seastar backend)\n");
  std::printf("(scale multiplier %.3g, %d epochs total, steady state = epoch %d+)\n\n",
              options.scale_multiplier, options.epochs + options.warmup, kSteadyFirstEpoch);
  std::printf("%-6s %-12s %10s %10s %12s %14s %14s\n", "model", "dataset", "|V|", "|E|",
              "steady ms", "mallocs/epoch", "requests/epoch");
  PrintHeaderRule(84);

  std::vector<RunReport> reports;
  for (const auto& [model_name, factory] : models) {
    for (const DatasetSpec& spec : HomogeneousDatasets()) {
      if (!DatasetSelected(options, spec.name)) {
        continue;
      }
      RunReport report = RunOne(model_name, factory, spec, options, profile.sink());
      std::printf("%-6s %-12s %10lld %10lld %12.3f %14.1f %14.1f\n", report.model.c_str(),
                  report.dataset.c_str(), static_cast<long long>(report.num_vertices),
                  static_cast<long long>(report.num_edges), report.steady_avg_ms,
                  report.steady_fresh_mallocs, report.steady_alloc_requests);
      std::fflush(stdout);
      reports.push_back(std::move(report));
    }
  }

  WriteReport(out_path, reports);
  WriteMetricsSnapshots(options);
  profile.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Main(argc, argv); }
