// Reproduces paper Fig. 10(c): per-epoch time of APPNP (K=10, alpha=0.1)
// across the 9 homogeneous datasets for DGL-like, PyG-like and Seastar
// execution.
#include <memory>

#include "bench/fig10_common.h"
#include "src/core/models/appnp.h"

int main(int argc, char** argv) {
  using namespace seastar;
  return bench::RunFig10("Fig.10(c)", "APPNP", argc, argv,
                         [](const Dataset& data, std::shared_ptr<const Executor> executor) {
                           AppnpConfig appnp;
                           appnp.hidden_dim = 64;
                           appnp.num_hops = 10;
                           appnp.alpha = 0.1f;
                           return std::unique_ptr<GnnModel>(new Appnp(data, appnp, std::move(executor)));
                         });
}
