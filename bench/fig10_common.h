// Shared driver for Figure 10 (a/b/c): per-epoch training time of one
// homogeneous model across the paper's 9 datasets under the DGL-like,
// PyG-like and Seastar execution strategies.
#ifndef BENCH_FIG10_COMMON_H_
#define BENCH_FIG10_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/model.h"

namespace seastar {
namespace bench {

using ModelFactory =
    std::function<std::unique_ptr<GnnModel>(const Dataset&, std::shared_ptr<const Executor>)>;

inline int RunFig10(const char* figure, const char* model_name, int argc, char** argv,
                    const ModelFactory& factory) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  BenchProfile profile(options);
  std::printf("%s: per-epoch time (ms) of %s training — paper Fig. 10\n", figure, model_name);
  std::printf("(scale multiplier %.3g, %d timed epochs + %d warmup, feature cap %lld)\n\n",
              options.scale_multiplier, options.epochs, options.warmup,
              static_cast<long long>(options.max_feature_dim));
  std::printf("%-12s %10s %10s %10s %10s %10s %12s\n", "dataset", "|V|", "|E|", "DGL", "PYG",
              "Seastar", "speedup/DGL");
  PrintHeaderRule(80);

  for (const DatasetSpec& spec : HomogeneousDatasets()) {
    if (!DatasetSelected(options, spec.name)) {
      continue;
    }
    Dataset data = LoadDataset(spec, options);
    const double effective_scale = spec.default_scale * options.scale_multiplier;
    TrainConfig train = MakeTrainConfig(options, effective_scale);

    double dgl_ms = 0.0;
    double seastar_ms = 0.0;
    std::string cells[3];
    const char* kSpecs[3] = {"dgl", "pyg", "seastar"};
    for (int i = 0; i < 3; ++i) {
      std::unique_ptr<GnnModel> model =
          factory(data, std::move(*ExecutorFactory::Create(kSpecs[i])));
      train.profiler = profile.sink();
      ProfileScope bench_span(profile.sink(), spec.name + "/" + kSpecs[i], "bench");
      TrainResult result = TrainNodeClassification(*model, data, train);
      cells[i] = TimeCell(result);
      if (i == 0) {
        dgl_ms = result.oom ? 0.0 : result.avg_epoch_ms;
      }
      if (i == 2) {
        seastar_ms = result.avg_epoch_ms;
      }
    }
    const double speedup = (dgl_ms > 0.0 && seastar_ms > 0.0) ? dgl_ms / seastar_ms : 0.0;
    std::printf("%-12s %10lld %10lld %10s %10s %10s %11.2fx\n", spec.name.c_str(),
                static_cast<long long>(data.spec.num_vertices),
                static_cast<long long>(data.spec.num_edges), cells[0].c_str(),
                cells[1].c_str(), cells[2].c_str(), speedup);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: Seastar fastest on every dataset; largest gains on\n"
              "high-average-degree graphs (amz_comp, reddit).\n");
  WriteMetricsSnapshots(options);
  profile.Finish();
  return 0;
}

}  // namespace bench
}  // namespace seastar

#endif  // BENCH_FIG10_COMMON_H_
