// Google-benchmark micro-suite over the individual kernels the systems are
// built from: dense GEMM, the fused GAT attention kernel per backend, the
// block-dispatch disciplines, and CSR construction. Complements the
// table/figure binaries with statistically sound per-kernel numbers.
//
// --sweep-out=<path> additionally runs the tiled-vs-untiled aggregation
// sweep (CopySum / MulSum × feature dims 16/64/256 × uniform / power-law
// degree skew) and writes a BENCH_kernels.json report gated by
// tools/bench_check.py. The sweep checks bitwise tiled/untiled parity on
// every configuration, so the report doubles as a correctness probe.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/exec/tiling.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/parallel/simt.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace seastar {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = ops::RandomNormal({n, 128}, 0, 1, rng);
  Tensor b = ops::RandomNormal({128, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 64);
}
BENCHMARK(BM_Matmul)->Arg(1024)->Arg(8192);

struct GatFixture {
  GatFixture() {
    Rng rng(7);
    CooEdges edges = Rmat(4000, 80000, rng);
    AddSelfLoops(edges);
    graph = ToGraph(std::move(edges));
    GirBuilder b;
    Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
    b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 16)), "out");
    gir = b.TakeGraph();
    features.vertex["eu"] = ops::RandomNormal({graph.num_vertices(), 1}, 0, 1, rng);
    features.vertex["ev"] = ops::RandomNormal({graph.num_vertices(), 1}, 0, 1, rng);
    features.vertex["h"] = ops::RandomNormal({graph.num_vertices(), 16}, 0, 1, rng);
  }
  Graph graph;
  GirGraph gir;
  FeatureMap features;
};

GatFixture& Fixture() {
  static GatFixture* fixture = new GatFixture();
  return *fixture;
}

void BM_GatKernelSeastar(benchmark::State& state) {
  GatFixture& f = Fixture();
  SeastarExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelSeastar);

void BM_GatKernelSeastarNoFusion(benchmark::State& state) {
  GatFixture& f = Fixture();
  SeastarExecutorOptions options;
  options.enable_fusion = false;
  SeastarExecutor executor(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelSeastarNoFusion);

void BM_GatKernelDglLike(benchmark::State& state) {
  GatFixture& f = Fixture();
  BaselineExecutor executor({BaselineFlavor::kDglLike, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelDglLike);

void BM_GatKernelPygLike(benchmark::State& state) {
  GatFixture& f = Fixture();
  BaselineExecutor executor({BaselineFlavor::kPygLike, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelPygLike);

void BM_BlockDispatch(benchmark::State& state) {
  const auto schedule = static_cast<BlockSchedule>(state.range(0));
  SimtLaunchParams params;
  params.num_blocks = 100000;
  params.schedule = schedule;
  for (auto _ : state) {
    int64_t total = 0;
    LaunchBlocks(params, [&](int64_t block, int) { benchmark::DoNotOptimize(block); });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * params.num_blocks);
  state.SetLabel(BlockScheduleName(schedule));
}
BENCHMARK(BM_BlockDispatch)
    ->Arg(static_cast<int>(BlockSchedule::kStatic))
    ->Arg(static_cast<int>(BlockSchedule::kAtomicPerBlock))
    ->Arg(static_cast<int>(BlockSchedule::kChunkedDynamic));

void BM_CsrBuild(benchmark::State& state) {
  Rng rng(3);
  CooEdges edges = Rmat(10000, 200000, rng);
  for (auto _ : state) {
    CooEdges copy = edges;
    benchmark::DoNotOptimize(
        ToGraph(std::move(copy)).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_CsrBuild);

// ---- Tiled-vs-untiled aggregation sweep ---------------------------------------------------------
// One data point: the same fused aggregation executed with the cache-blocked
// tiled edge loops and with the flat untiled ones, on the same graph and
// features. Both paths share the runtime-dispatched SIMD row kernels
// (src/tensor/simd.h), so the outputs must be bit-identical — the sweep
// asserts that with a memcmp per configuration, making the perf report a
// correctness probe too.
struct SweepPoint {
  std::string kernel;  // "copy_sum" | "mul_sum"
  std::string skew;    // "uniform" | "zipf"
  int64_t feat_dim = 0;
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  double untiled_ms = 0.0;
  double tiled_ms = 0.0;
  bool bitwise_equal = false;
  double max_abs_diff = 0.0;
  int64_t tile_segments = 0;  // Segments one tiled run executed.
};

// Best-of-N wall time for one executor pass; the minimum is the standard
// noise filter on a shared runner (every perturbation only adds time).
template <typename Fn>
double BestOfMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

std::vector<SweepPoint> RunKernelSweep() {
  const bool tiling_was_enabled = TilingEnabled();
  metrics::Counter* segments_counter =
      metrics::MetricsRegistry::Get().GetCounter("seastar_tiling_segments_total");
  std::vector<SweepPoint> points;
  constexpr int64_t kVertices = 20000;
  constexpr int64_t kEdges = 200000;
  constexpr int kReps = 3;
  for (const char* skew : {"uniform", "zipf"}) {
    Rng graph_rng(11);
    CooEdges edges = std::string(skew) == "uniform" ? ErdosRenyi(kVertices, kEdges, graph_rng)
                                                    : Rmat(kVertices, kEdges, graph_rng);
    Graph graph = ToGraph(std::move(edges));
    for (const char* kernel : {"copy_sum", "mul_sum"}) {
      for (const int64_t d : {int64_t{16}, int64_t{64}, int64_t{256}}) {
        GirBuilder b;
        if (std::string(kernel) == "copy_sum") {
          b.MarkOutput(AggSum(b.Src("h", static_cast<int32_t>(d))), "out");
        } else {
          b.MarkOutput(
              AggSum(b.Src("h", static_cast<int32_t>(d)) * b.Dst("g", static_cast<int32_t>(d))),
              "out");
        }
        GirGraph gir = b.TakeGraph();
        Rng rng(29);
        FeatureMap features;
        features.vertex["h"] = ops::RandomNormal({graph.num_vertices(), d}, 0, 1, rng);
        features.vertex["g"] = ops::RandomNormal({graph.num_vertices(), d}, 0, 1, rng);
        SeastarExecutor executor;

        SetTilingEnabled(false);
        Tensor untiled = executor.Run(gir, graph, features).outputs.at("out");
        const double untiled_ms = BestOfMs(
            kReps, [&] { benchmark::DoNotOptimize(executor.Run(gir, graph, features).outputs); });

        SetTilingEnabled(true);
        const int64_t segments_before = segments_counter->value();
        Tensor tiled = executor.Run(gir, graph, features).outputs.at("out");
        const int64_t tile_segments = segments_counter->value() - segments_before;
        const double tiled_ms = BestOfMs(
            kReps, [&] { benchmark::DoNotOptimize(executor.Run(gir, graph, features).outputs); });

        SweepPoint point;
        point.kernel = kernel;
        point.skew = skew;
        point.feat_dim = d;
        point.num_vertices = graph.num_vertices();
        point.num_edges = graph.num_edges();
        point.untiled_ms = untiled_ms;
        point.tiled_ms = tiled_ms;
        point.tile_segments = tile_segments;
        point.bitwise_equal =
            tiled.numel() == untiled.numel() &&
            std::memcmp(tiled.data(), untiled.data(), sizeof(float) * tiled.numel()) == 0;
        for (int64_t i = 0; i < tiled.numel(); ++i) {
          point.max_abs_diff =
              std::max(point.max_abs_diff, std::fabs(double(tiled.data()[i]) - untiled.data()[i]));
        }
        points.push_back(std::move(point));
        std::printf("sweep %-8s %-7s d=%-3lld untiled %7.3f ms  tiled %7.3f ms  (%.2fx)  %s\n",
                    kernel, skew, static_cast<long long>(d), untiled_ms, tiled_ms,
                    untiled_ms / tiled_ms, points.back().bitwise_equal ? "bit-identical" : "DIFF");
      }
    }
  }
  SetTilingEnabled(tiling_was_enabled);
  return points;
}

bool WriteSweepReport(const std::string& path, const std::vector<SweepPoint>& points) {
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "kernels");
  json.Field("simd_isa", simd::SimdIsaName());
  json.Field("simd_lanes", static_cast<int64_t>(simd::SimdLanes()));
  json.Key("sweeps");
  json.BeginArray();
  for (const SweepPoint& point : points) {
    json.BeginObject();
    json.Field("kernel", point.kernel);
    json.Field("skew", point.skew);
    json.Field("feat_dim", point.feat_dim);
    json.Field("num_vertices", point.num_vertices);
    json.Field("num_edges", point.num_edges);
    json.FieldDouble("untiled_ms", point.untiled_ms, 3);
    json.FieldDouble("tiled_ms", point.tiled_ms, 3);
    json.FieldDouble("speedup", point.untiled_ms / std::max(point.tiled_ms, 1e-9), 3);
    json.Field("bitwise_equal", point.bitwise_equal);
    json.FieldDouble("max_abs_diff", point.max_abs_diff, 9);
    json.Field("tile_segments", point.tile_segments);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.WriteToFile(path);
}

}  // namespace
}  // namespace seastar

// Custom main instead of BENCHMARK_MAIN(): strip --metrics-out/--metrics-text
// before google-benchmark sees them (it rejects unknown flags), then dump the
// registry after the suite runs.
int main(int argc, char** argv) {
  const std::string metrics_out = seastar::FlagValue(argc, argv, "metrics-out", "");
  const std::string metrics_text = seastar::FlagValue(argc, argv, "metrics-text", "");
  const std::string sweep_out = seastar::FlagValue(argc, argv, "sweep-out", "");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0 || arg.rfind("--metrics-text=", 0) == 0 ||
        arg.rfind("--sweep-out=", 0) == 0) {
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!sweep_out.empty()) {
    const std::vector<seastar::SweepPoint> points = seastar::RunKernelSweep();
    if (!seastar::WriteSweepReport(sweep_out, points)) {
      std::fprintf(stderr, "cannot write %s\n", sweep_out.c_str());
      return 1;
    }
    std::printf("sweep report: %s\n", sweep_out.c_str());
  }
  seastar::metrics::MetricsRegistry& registry = seastar::metrics::MetricsRegistry::Get();
  if (!metrics_out.empty() && !registry.WriteJsonFile(metrics_out)) {
    return 1;
  }
  if (!metrics_text.empty() && !registry.WriteTextFile(metrics_text)) {
    return 1;
  }
  return 0;
}
