// Google-benchmark micro-suite over the individual kernels the systems are
// built from: dense GEMM, the fused GAT attention kernel per backend, the
// block-dispatch disciplines, and CSR construction. Complements the
// table/figure binaries with statistically sound per-kernel numbers.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/exec/baseline_executor.h"
#include "src/exec/seastar_executor.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/parallel/simt.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = ops::RandomNormal({n, 128}, 0, 1, rng);
  Tensor b = ops::RandomNormal({128, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 64);
}
BENCHMARK(BM_Matmul)->Arg(1024)->Arg(8192);

struct GatFixture {
  GatFixture() {
    Rng rng(7);
    CooEdges edges = Rmat(4000, 80000, rng);
    AddSelfLoops(edges);
    graph = ToGraph(std::move(edges));
    GirBuilder b;
    Value e = Exp(LeakyRelu(b.Src("eu", 1) + b.Dst("ev", 1), 0.2f));
    b.MarkOutput(AggSum(e / AggSum(e) * b.Src("h", 16)), "out");
    gir = b.TakeGraph();
    features.vertex["eu"] = ops::RandomNormal({graph.num_vertices(), 1}, 0, 1, rng);
    features.vertex["ev"] = ops::RandomNormal({graph.num_vertices(), 1}, 0, 1, rng);
    features.vertex["h"] = ops::RandomNormal({graph.num_vertices(), 16}, 0, 1, rng);
  }
  Graph graph;
  GirGraph gir;
  FeatureMap features;
};

GatFixture& Fixture() {
  static GatFixture* fixture = new GatFixture();
  return *fixture;
}

void BM_GatKernelSeastar(benchmark::State& state) {
  GatFixture& f = Fixture();
  SeastarExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelSeastar);

void BM_GatKernelSeastarNoFusion(benchmark::State& state) {
  GatFixture& f = Fixture();
  SeastarExecutorOptions options;
  options.enable_fusion = false;
  SeastarExecutor executor(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelSeastarNoFusion);

void BM_GatKernelDglLike(benchmark::State& state) {
  GatFixture& f = Fixture();
  BaselineExecutor executor({BaselineFlavor::kDglLike, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelDglLike);

void BM_GatKernelPygLike(benchmark::State& state) {
  GatFixture& f = Fixture();
  BaselineExecutor executor({BaselineFlavor::kPygLike, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(f.gir, f.graph, f.features).outputs.size());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_edges());
}
BENCHMARK(BM_GatKernelPygLike);

void BM_BlockDispatch(benchmark::State& state) {
  const auto schedule = static_cast<BlockSchedule>(state.range(0));
  SimtLaunchParams params;
  params.num_blocks = 100000;
  params.schedule = schedule;
  for (auto _ : state) {
    int64_t total = 0;
    LaunchBlocks(params, [&](int64_t block, int) { benchmark::DoNotOptimize(block); });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * params.num_blocks);
  state.SetLabel(BlockScheduleName(schedule));
}
BENCHMARK(BM_BlockDispatch)
    ->Arg(static_cast<int>(BlockSchedule::kStatic))
    ->Arg(static_cast<int>(BlockSchedule::kAtomicPerBlock))
    ->Arg(static_cast<int>(BlockSchedule::kChunkedDynamic));

void BM_CsrBuild(benchmark::State& state) {
  Rng rng(3);
  CooEdges edges = Rmat(10000, 200000, rng);
  for (auto _ : state) {
    CooEdges copy = edges;
    benchmark::DoNotOptimize(
        ToGraph(std::move(copy)).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_CsrBuild);

}  // namespace
}  // namespace seastar

// Custom main instead of BENCHMARK_MAIN(): strip --metrics-out/--metrics-text
// before google-benchmark sees them (it rejects unknown flags), then dump the
// registry after the suite runs.
int main(int argc, char** argv) {
  const std::string metrics_out = seastar::FlagValue(argc, argv, "metrics-out", "");
  const std::string metrics_text = seastar::FlagValue(argc, argv, "metrics-text", "");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0 || arg.rfind("--metrics-text=", 0) == 0) {
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  seastar::metrics::MetricsRegistry& registry = seastar::metrics::MetricsRegistry::Get();
  if (!metrics_out.empty() && !registry.WriteJsonFile(metrics_out)) {
    return 1;
  }
  if (!metrics_text.empty() && !registry.WriteTextFile(metrics_text)) {
    return 1;
  }
  return 0;
}
