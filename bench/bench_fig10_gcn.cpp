// Reproduces paper Fig. 10(b): per-epoch time of GCN across the 9
// homogeneous datasets for DGL-like, PyG-like and Seastar execution.
#include <memory>

#include "bench/fig10_common.h"
#include "src/core/models/gcn.h"

int main(int argc, char** argv) {
  using namespace seastar;
  return bench::RunFig10("Fig.10(b)", "GCN", argc, argv,
                         [](const Dataset& data, std::shared_ptr<const Executor> executor) {
                           GcnConfig gcn;
                           gcn.hidden_dim = 16;
                           return std::unique_ptr<GnnModel>(new Gcn(data, gcn, std::move(executor)));
                         });
}
