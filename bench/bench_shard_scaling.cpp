// Shard-scaling benchmark for the owner/mirror sharded runtime: one
// GCN-layer epoch (forward A:D aggregation + backward A:S partial-sum
// combine) over a synthetic multi-million-edge graph, at shards=1/2/4.
//
// The graph comes from LocalizedRandom: destinations are drawn within
// +-span of their source, so with span << V/num_shards almost every edge is
// shard-local and each shard's working set is a contiguous 1/K slice of the
// feature tensors. That is the regime vertex-range sharding targets — on a
// single core the speedup is pure cache locality (the full-graph
// interpreter walks src rows scattered across a feature tensor much larger
// than the effective LLC share; a shard walks a slice that fits), on
// multiple cores the shard workers add parallelism on top. The defaults put
// the full feature tensor at 32 MB and the 4-shard slice at 8 MB, which
// straddles the effective cache on typical shared hosts (measured per-edge
// gather cost on this tier: ~37 ns at 32 MB, ~13 ns at 8 MB).
//
//   ./bench_shard_scaling [--vertices=250000] [--edges=8000000]
//       [--span=2048] [--width=32] [--epochs=5] [--warmup=1]
//       [--out=BENCH_shard.json]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/exec/shard_runtime.h"
#include "src/gir/builder.h"
#include "src/graph/generators.h"
#include "src/graph/partition.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace bench {
namespace {

struct ShardRun {
  int shards = 1;
  double partition_ms = 0.0;
  double avg_epoch_ms = 0.0;
  double min_epoch_ms = 0.0;
  int64_t total_mirrors = 0;
  int64_t halo_messages = 0;
  int64_t halo_bytes = 0;
  int64_t shard_retries = 0;
  int64_t shard_fallbacks = 0;
  double speedup = 1.0;
};

int Run(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  const int64_t num_vertices = FlagInt(argc, argv, "vertices", 250'000);
  const int64_t num_edges = FlagInt(argc, argv, "edges", 8'000'000);
  const int64_t span = FlagInt(argc, argv, "span", 2'048);
  const int32_t width = static_cast<int32_t>(FlagInt(argc, argv, "width", 32));
  const std::string out_path = FlagValue(argc, argv, "out", "BENCH_shard.json");
  const int epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 5));
  const int warmup = options.warmup;

  Rng rng(0x5a4d1);
  Graph graph = ToGraph(LocalizedRandom(num_vertices, num_edges, span, rng));

  // The two vertex-program launches of one GCN layer epoch. Forward: the
  // normalized in-neighbor sum (A:D, exact shard-locally). Backward: the
  // feature gradient, an out-edge sum per source (A:S, partial on mirrors,
  // combined on masters) — the launch that exercises the halo protocol.
  GirBuilder fwd;
  fwd.MarkOutput(AggSum(fwd.Src("h", width) * fwd.Src("norm", 1)), "out");
  const GirGraph forward = fwd.TakeGraph();
  GirBuilder bwd;
  bwd.MarkOutput(AggSum(bwd.Dst("g", width) * bwd.Src("norm", 1), AggTo::kSrc), "grad_h");
  const GirGraph backward = bwd.TakeGraph();

  FeatureMap features;
  features.vertex["h"] = ops::RandomNormal({num_vertices, width}, 0.0f, 1.0f, rng);
  features.vertex["g"] = ops::RandomNormal({num_vertices, width}, 0.0f, 1.0f, rng);
  features.vertex["norm"] = ops::RandomNormal({num_vertices, 1}, 0.0f, 1.0f, rng);

  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  metrics::Counter* messages = registry.GetCounter("seastar_shard_halo_messages_total");
  metrics::Counter* bytes = registry.GetCounter("seastar_shard_halo_bytes_total");
  // Recovery counters: a steady-state bench run is healthy only when it
  // never retried or fell back — both must read zero (gated in bench_check).
  metrics::Counter* retries = registry.GetCounter("seastar_shard_retries_total");
  metrics::Counter* unshardable = registry.GetCounter("seastar_shard_fallbacks_total");
  metrics::Counter* recovery = registry.GetCounter("seastar_shard_recovery_fallbacks_total");

  std::printf("shard scaling: GCN-layer epoch on LocalizedRandom |V|=%lld |E|=%lld "
              "span=%lld width=%d\n\n",
              static_cast<long long>(num_vertices), static_cast<long long>(num_edges),
              static_cast<long long>(span), width);
  std::printf("%-8s %12s %12s %14s %12s %14s %12s\n", "shards", "epoch (ms)", "min (ms)",
              "partition (ms)", "mirrors", "halo KiB/ep", "speedup");
  PrintHeaderRule(91);

  std::vector<ShardRun> runs;
  for (int shards : {1, 2, 4}) {
    ShardRun run;
    run.shards = shards;
    ShardRuntime runtime({.num_shards = shards});

    Stopwatch partition_watch;
    GraphView view = runtime.PrepareView(graph);
    run.partition_ms = partition_watch.ElapsedMillis();
    run.total_mirrors = view.sharded()->TotalMirrors();

    for (int i = 0; i < warmup; ++i) {
      runtime.Execute(forward, view, features);
      runtime.Execute(backward, view, features);
    }
    const int64_t messages_before = messages->value();
    const int64_t bytes_before = bytes->value();
    const int64_t retries_before = retries->value();
    const int64_t fallbacks_before = unshardable->value() + recovery->value();
    double total_ms = 0.0;
    double min_ms = 0.0;
    for (int i = 0; i < epochs; ++i) {
      Stopwatch watch;
      runtime.Execute(forward, view, features);
      runtime.Execute(backward, view, features);
      const double epoch_ms = watch.ElapsedMillis();
      total_ms += epoch_ms;
      min_ms = (i == 0) ? epoch_ms : std::min(min_ms, epoch_ms);
    }
    run.avg_epoch_ms = total_ms / epochs;
    run.min_epoch_ms = min_ms;
    run.halo_messages = (messages->value() - messages_before) / epochs;
    run.halo_bytes = (bytes->value() - bytes_before) / epochs;
    run.shard_retries = retries->value() - retries_before;
    run.shard_fallbacks = unshardable->value() + recovery->value() - fallbacks_before;
    // Speedup from the best epoch of each run: on shared hosts the min is far
    // less sensitive to scheduler noise than the mean, and caching effects —
    // the thing this bench measures — set the floor, not the tail.
    run.speedup = runs.empty() ? 1.0 : runs.front().min_epoch_ms / run.min_epoch_ms;

    std::printf("%-8d %12.2f %12.2f %14.2f %12lld %14.1f %11.2fx\n", run.shards,
                run.avg_epoch_ms, run.min_epoch_ms, run.partition_ms,
                static_cast<long long>(run.total_mirrors),
                static_cast<double>(run.halo_bytes) / 1024.0, run.speedup);
    std::fflush(stdout);
    runs.push_back(run);
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "shard_scaling");
  json.Field("num_vertices", num_vertices);
  json.Field("num_edges", num_edges);
  json.Field("span", span);
  json.Field("feature_width", static_cast<int64_t>(width));
  json.Key("runs");
  json.BeginArray();
  for (const ShardRun& run : runs) {
    json.BeginObject();
    json.Field("shards", static_cast<int64_t>(run.shards));
    json.FieldDouble("avg_epoch_ms", run.avg_epoch_ms, 3);
    json.FieldDouble("min_epoch_ms", run.min_epoch_ms, 3);
    json.FieldDouble("partition_ms", run.partition_ms, 3);
    json.Field("total_mirrors", run.total_mirrors);
    json.Field("halo_messages", static_cast<uint64_t>(run.halo_messages));
    json.Field("halo_bytes", static_cast<uint64_t>(run.halo_bytes));
    json.Field("shard_retries", static_cast<uint64_t>(run.shard_retries));
    json.Field("shard_fallbacks", static_cast<uint64_t>(run.shard_fallbacks));
    json.FieldDouble("speedup", run.speedup, 3);
    json.EndObject();
  }
  json.EndArray();
  json.FieldDouble("speedup_at_max_shards", runs.back().speedup, 3);
  json.EndObject();
  if (json.WriteToFile(out_path)) {
    std::printf("\nreport: %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  WriteMetricsSnapshots(options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Run(argc, argv); }
