// Reproduces paper Table 3: per-epoch time (ms) of R-GCN training on the
// heterogeneous datasets (aifb / mutag / bgs) across the five execution
// modes.
#include "bench/table3_common.h"

int main(int argc, char** argv) {
  return seastar::bench::RunRgcnTable("Table 3", /*time_metric=*/true, argc, argv);
}
