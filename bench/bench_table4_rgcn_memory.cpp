// Reproduces paper Table 4: peak memory (MB) of R-GCN training on the
// heterogeneous datasets across the five execution modes.
#include "bench/table3_common.h"

int main(int argc, char** argv) {
  return seastar::bench::RunRgcnTable("Table 4", /*time_metric=*/false, argc, argv);
}
