// Reproduces paper Fig. 11: peak memory consumption (MB here; the paper
// plots GB at full scale) of training GAT / GCN / APPNP on the four largest
// homogeneous datasets under the three execution strategies. OOM is decided
// against a soft budget modelling the paper's 11 GB device, scaled with the
// dataset.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/appnp.h"
#include "src/core/models/gat.h"
#include "src/core/models/gcn.h"

namespace seastar {
namespace bench {
namespace {

std::unique_ptr<GnnModel> MakeModel(const std::string& model_name, const Dataset& data,
                                    std::shared_ptr<const Executor> executor) {
  if (model_name == "GAT") {
    GatConfig gat;
    gat.num_heads = 8;
    gat.hidden_dim = 8;
    return std::make_unique<Gat>(data, gat, std::move(executor));
  }
  if (model_name == "GCN") {
    GcnConfig gcn;
    return std::make_unique<Gcn>(data, gcn, std::move(executor));
  }
  AppnpConfig appnp;
  return std::make_unique<Appnp>(data, appnp, std::move(executor));
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  options.epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 3));  // Memory, not time.
  const char* kDatasets[] = {"corafull", "ca_cs", "ca_physics", "reddit"};
  const char* kModels[] = {"GAT", "GCN", "APPNP"};

  std::printf("Fig.11: peak tensor memory (MB) of training — paper Fig. 11\n");
  std::printf("(soft OOM budget: %.1f GB x dataset scale)\n\n", options.memory_budget_gb);
  std::printf("%-8s %-12s %12s %12s %12s %14s\n", "model", "dataset", "DGL", "PYG", "Seastar",
              "PYG/Seastar");
  PrintHeaderRule(76);

  for (const char* model_name : kModels) {
    for (const char* dataset_name : kDatasets) {
      if (!DatasetSelected(options, dataset_name)) {
        continue;
      }
      const DatasetSpec* spec = FindDataset(dataset_name);
      Dataset data = LoadDataset(*spec, options);
      const double effective_scale = spec->default_scale * options.scale_multiplier;
      TrainConfig train = MakeTrainConfig(options, effective_scale);

      std::string cells[3];
      double pyg_mb = 0.0;
      double seastar_mb = 0.0;
      const char* kSpecs[3] = {"dgl", "pyg", "seastar"};
      for (int i = 0; i < 3; ++i) {
        std::unique_ptr<GnnModel> model =
            MakeModel(model_name, data, std::move(*ExecutorFactory::Create(kSpecs[i])));
        TrainResult result = TrainNodeClassification(*model, data, train);
        cells[i] = MemoryCell(result);
        const double mb = static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0);
        if (i == 1) {
          pyg_mb = result.oom ? 0.0 : mb;
        }
        if (i == 2) {
          seastar_mb = mb;
        }
      }
      const double ratio = (pyg_mb > 0.0 && seastar_mb > 0.0) ? pyg_mb / seastar_mb : 0.0;
      if (ratio > 0.0) {
        std::printf("%-8s %-12s %12s %12s %12s %13.2fx\n", model_name, dataset_name,
                    cells[0].c_str(), cells[1].c_str(), cells[2].c_str(), ratio);
      } else {
        std::printf("%-8s %-12s %12s %12s %12s %14s\n", model_name, dataset_name,
                    cells[0].c_str(), cells[1].c_str(), cells[2].c_str(), "(PyG OOM)");
      }
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: PyG uses far more memory (OOM on reddit); DGL is close to\n"
              "Seastar thanks to BinaryReduce; Seastar lowest everywhere (up to ~2.5x\n"
              "below DGL for APPNP on reddit).\n");
  WriteMetricsSnapshots(options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Run(argc, argv); }
