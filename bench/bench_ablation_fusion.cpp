// Ablation called out in DESIGN.md: what seastar operator fusion (§6.2) and
// materialization planning buy on their own. Runs GAT with the Seastar
// kernels but fusion disabled (every operator its own unit, all
// intermediates materialized) against the full system, on a fusion-rich
// model.
//
//   ./bench_ablation_fusion [--dataset=amz_photo] [--epochs=10] [--scale=1]
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gat.h"

namespace seastar {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  const std::string dataset_name = FlagValue(argc, argv, "dataset", "amz_photo");
  const DatasetSpec* spec = FindDataset(dataset_name);
  Dataset data = LoadDataset(*spec, options);
  TrainConfig train = MakeTrainConfig(options, spec->default_scale * options.scale_multiplier);

  std::printf("Ablation: seastar operator fusion on/off (GAT, %s)\n\n",
              data.graph.DebugString().c_str());
  std::printf("%-18s %14s %14s\n", "configuration", "epoch (ms)", "peak (MB)");
  PrintHeaderRule(50);

  double fused_ms = 0.0;
  double unfused_ms = 0.0;
  for (bool fused : {true, false}) {
    GatConfig gat;
    gat.num_heads = 8;
    gat.hidden_dim = 8;
    Gat model(data, gat,
              std::move(*ExecutorFactory::Create(fused ? "seastar" : "seastar-nofuse")));
    TrainResult result = TrainNodeClassification(model, data, train);
    std::printf("%-18s %14.2f %14s\n", model.session().executor().name(),
                result.avg_epoch_ms, MemoryCell(result).c_str());
    (fused ? fused_ms : unfused_ms) = result.avg_epoch_ms;
  }
  if (fused_ms > 0.0) {
    std::printf("\nfusion speedup: %.2fx\n", unfused_ms / fused_ms);
  }
  WriteMetricsSnapshots(options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Run(argc, argv); }
