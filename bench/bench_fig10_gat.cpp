// Reproduces paper Fig. 10(a): per-epoch time of GAT across the 9
// homogeneous datasets for DGL-like, PyG-like and Seastar execution.
#include <memory>

#include "bench/fig10_common.h"
#include "src/core/models/gat.h"

int main(int argc, char** argv) {
  using namespace seastar;
  return bench::RunFig10("Fig.10(a)", "GAT", argc, argv,
                         [](const Dataset& data, std::shared_ptr<const Executor> executor) {
                           GatConfig gat;
                           gat.num_heads = 8;
                           gat.hidden_dim = 8;
                           return std::unique_ptr<GnnModel>(new Gat(data, gat, std::move(executor)));
                         });
}
