// Reproduces paper Fig. 12: speedup of the neighbor-access micro-benchmark
// against the DGL binary-search baseline, for the four Seastar kernel
// variants (Basic, FA+Unsorted, FA+Sorting+Atomic, FA+Sorting+Dynamic) as
// the feature width sweeps from the reddit native width (602) down to 1.
//
//   ./bench_fig12_neighbor_access [--scale=1] [--reps=3]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/exec/neighbor_access.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"

namespace seastar {
namespace bench {
namespace {

double TimeStrategy(NeighborAccessStrategy strategy, const Graph& sorted_graph,
                    const Graph& unsorted_graph, const Tensor& features, int reps) {
  // One untimed warm-up run.
  RunNeighborAccess(strategy, sorted_graph, unsorted_graph, features);
  double best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    RunNeighborAccess(strategy, sorted_graph, unsorted_graph, features);
    best_ms = std::min(best_ms, watch.ElapsedMillis());
  }
  return best_ms;
}

int Run(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const int reps = static_cast<int>(FlagInt(argc, argv, "reps", 3));
  BenchOptions metrics_flags;  // Only --metrics-out/--metrics-text are used here.
  metrics_flags.metrics_out = FlagValue(argc, argv, "metrics-out", "");
  metrics_flags.metrics_text = FlagValue(argc, argv, "metrics-text", "");

  // Reddit-shaped graph: the paper runs this micro-benchmark on reddit.
  const DatasetSpec* reddit = FindDataset("reddit");
  const int64_t n = static_cast<int64_t>(reddit->num_vertices * reddit->default_scale * scale);
  const int64_t m = static_cast<int64_t>(reddit->num_edges * reddit->default_scale * scale);
  Rng rng(99);
  CooEdges edges = Rmat(n, m, rng);
  CooEdges copy = edges;
  GraphOptions unsorted_options;
  unsorted_options.sort_by_degree = false;
  Graph sorted_graph = ToGraph(std::move(edges));
  Graph unsorted_graph = ToGraph(std::move(copy), {}, 1, unsorted_options);

  std::printf("Fig.12: neighbor-access speedup vs DGL(binary-search) — paper Fig. 12\n");
  std::printf("graph: %s (reddit-shaped)\n\n", sorted_graph.DebugString().c_str());
  std::printf("%-6s %14s | %10s %12s %14s %14s\n", "feat", "baseline(ms)", "Basic",
              "FA+Unsorted", "FA+Sort+Atom", "FA+Sort+Dyn");
  PrintHeaderRule(78);

  const std::vector<int64_t> feature_sizes{602, 256, 128, 64, 32, 16, 8, 4, 2, 1};
  const NeighborAccessStrategy variants[] = {
      NeighborAccessStrategy::kBasic,
      NeighborAccessStrategy::kFaUnsorted,
      NeighborAccessStrategy::kFaSortedAtomic,
      NeighborAccessStrategy::kFaSortedDynamic,
  };

  for (int64_t d : feature_sizes) {
    Tensor features = ops::RandomNormal({n, d}, 0.0f, 1.0f, rng);
    const double baseline_ms = TimeStrategy(NeighborAccessStrategy::kDglBinarySearch,
                                            sorted_graph, unsorted_graph, features, reps);
    std::printf("%-6lld %14.3f |", static_cast<long long>(d), baseline_ms);
    for (NeighborAccessStrategy strategy : variants) {
      const double ms = TimeStrategy(strategy, sorted_graph, unsorted_graph, features, reps);
      std::printf(" %*.2fx", strategy == NeighborAccessStrategy::kBasic ? 9 : 13,
                  baseline_ms / ms);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: every variant beats the binary-search baseline; the gap\n"
              "widens as features shrink; FA variants beat Basic at small widths;\n"
              "Dynamic >= Atomic.\n");
  WriteMetricsSnapshots(metrics_flags);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Run(argc, argv); }
