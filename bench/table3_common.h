// Shared driver for Tables 3 and 4: R-GCN on the heterogeneous datasets
// under the five execution modes (Seastar, PyG-bmm, PyG, DGL-bmm, DGL).
#ifndef BENCH_TABLE3_COMMON_H_
#define BENCH_TABLE3_COMMON_H_

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/kernel_counter.h"
#include "src/core/models/rgcn.h"

namespace seastar {
namespace bench {

inline constexpr RgcnMode kTableModes[] = {
    RgcnMode::kSeastar, RgcnMode::kPygBmm, RgcnMode::kPygSequential, RgcnMode::kDglBmm,
    RgcnMode::kDglSequential,
};

// `metric`: true => per-epoch ms (Table 3); false => peak MB (Table 4).
inline int RunRgcnTable(const char* table, bool time_metric, int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  BenchProfile profile(options);
  if (!time_metric) {
    options.epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 3));
  }
  std::printf("%s: R-GCN %s — paper %s\n", table,
              time_metric ? "per-epoch time (ms)" : "peak memory (MB)", table);
  std::printf("(scale multiplier %.3g, %d timed epochs + %d warmup)\n\n",
              options.scale_multiplier, options.epochs, options.warmup);
  std::printf("%-8s %16s %16s %16s %16s %16s\n", "dataset", "Seastar", "PyG-bmm", "PyG",
              "DGL-bmm", "DGL");
  std::printf("%-8s %16s %16s %16s %16s %16s\n", "", "(ms | kernels)", "(ms | kernels)",
              "(ms | kernels)", "(ms | kernels)", "(ms | kernels)");
  PrintHeaderRule(94);

  for (const DatasetSpec& spec : HeterogeneousDatasets()) {
    if (!DatasetSelected(options, spec.name)) {
      continue;
    }
    Dataset data = LoadDataset(spec, options);
    const double effective_scale = spec.default_scale * options.scale_multiplier;
    TrainConfig train = MakeTrainConfig(options, effective_scale);

    std::printf("%-8s", spec.name.c_str());
    for (RgcnMode mode : kTableModes) {
      RgcnConfig config;
      config.mode = mode;
      Rgcn model(data, config);
      ResetKernelLaunchCount();
      train.profiler = profile.sink();
      ProfileScope bench_span(profile.sink(), spec.name + "/" + RgcnModeName(mode), "bench");
      TrainResult result = TrainNodeClassification(model, data, train);
      const int64_t launches_per_epoch =
          result.epochs_run > 0 ? KernelLaunchCount() / result.epochs_run : 0;
      if (time_metric) {
        std::printf(" %9s | %4lld", TimeCell(result).c_str(),
                    static_cast<long long>(launches_per_epoch));
      } else {
        std::printf(" %16s", MemoryCell(result).c_str());
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  if (time_metric) {
    std::printf(
        "\npaper shape: Seastar fastest, bmm variants close, per-relation-sequential\n"
        "DGL/PyG orders of magnitude behind. On this single-core CPU simulation all\n"
        "modes execute the same FLOPs, so the *time* contrast compresses; the\n"
        "kernels/epoch column preserves the paper's mechanism (the sequential paths\n"
        "launch one kernel sequence per relation, which is what stalls a GPU).\n");
  } else {
    std::printf("\npaper shape: Seastar ~= DGL-bmm < DGL < PyG-bmm ~= PyG;\n"
                "PyG(-bmm) OOM on bgs at full scale.\n");
  }
  WriteMetricsSnapshots(options);
  profile.Finish();
  return 0;
}

}  // namespace bench
}  // namespace seastar

#endif  // BENCH_TABLE3_COMMON_H_
