// Reproduces the §6.3.5 design-choice analysis: flat per-edge type array vs
// the compressed type-offset index, on the heterogeneous datasets. The paper
// reports N_e / N_t ratios between 1.385 and 1.923 for its datasets —
// below the break-even 2 — and therefore ships the flat array; this bench
// recomputes the decision on the synthetic stand-ins.
//
//   ./bench_edge_type_storage [--scale=1]
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/type_storage.h"

namespace seastar {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  std::printf("Edge-type storage analysis — paper §6.3.5\n\n");
  std::printf("%-8s %10s %12s %10s %12s %14s %8s\n", "dataset", "|E|", "N_t(max)",
              "Ne/Nt", "flat (KB)", "compressed(KB)", "winner");
  PrintHeaderRule(82);
  for (const DatasetSpec& spec : HeterogeneousDatasets()) {
    if (!DatasetSelected(options, spec.name)) {
      continue;
    }
    Dataset data = LoadDataset(spec, options);
    TypeStorageDecision decision = AnalyzeTypeStorage(data.graph);
    std::printf("%-8s %10lld %12lld %10.3f %12.1f %14.1f %8s\n", spec.name.c_str(),
                static_cast<long long>(decision.num_edges),
                static_cast<long long>(
                    std::max(decision.unique_pairs_in, decision.unique_pairs_out)),
                decision.ratio, static_cast<double>(decision.flat_bytes) / 1024.0,
                static_cast<double>(decision.compressed_bytes) / 1024.0,
                decision.flat_wins ? "flat" : "compressed");
  }
  std::printf("\npaper shape: every dataset has Ne/Nt < 2 (paper: 1.385 .. 1.923), so the\n"
              "flat per-edge type array wins and is what Seastar ships.\n");
  WriteMetricsSnapshots(options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Run(argc, argv); }
