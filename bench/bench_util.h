// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench accepts:
//   --scale=<f>     multiplier on each dataset's default scale (1.0 = the
//                   catalogue's tractable default; use a large value plus
//                   patience to approach the paper's full sizes)
//   --epochs=<n>    timed epochs (paper: 200; default here: 10)
//   --warmup=<n>    discarded warm-up epochs (paper and default: 3)
//   --datasets=a,b  comma-separated subset filter
//   --max-feat=<n>  cap on feature width (0 = uncapped)
//   --metrics-out=<p>  write the process metrics-registry JSON snapshot there
//                      on exit (same format as the serving/training binaries)
//   --metrics-text=<p> same data, Prometheus text exposition
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/string_util.h"
#include "src/core/train.h"
#include "src/graph/datasets.h"

namespace seastar {
namespace bench {

struct BenchOptions {
  double scale_multiplier = 1.0;
  int epochs = 10;
  int warmup = 3;
  int64_t max_feature_dim = 128;
  std::vector<std::string> dataset_filter;  // Empty = all.
  // Models the paper's 11 GB GPU, scaled with the dataset (memory use on a
  // graph scaled by s shrinks by roughly s).
  double memory_budget_gb = 11.0;
  // --profile=<path>: record per-unit/per-op spans for every timed run and
  // write a Chrome-trace JSON there (plus a summary table on stdout).
  // Empty = profiling off (the default; keeps timed numbers clean).
  std::string profile_path;
  // --metrics-out= / --metrics-text=: dump the process metrics registry
  // (JSON / Prometheus text) when the bench finishes. Empty = no dump; the
  // registry itself is always on either way.
  std::string metrics_out;
  std::string metrics_text;
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.scale_multiplier = FlagDouble(argc, argv, "scale", 1.0);
  options.epochs = static_cast<int>(FlagInt(argc, argv, "epochs", 4));
  options.warmup = static_cast<int>(FlagInt(argc, argv, "warmup", 1));
  options.max_feature_dim = FlagInt(argc, argv, "max-feat", 128);
  options.memory_budget_gb = FlagDouble(argc, argv, "budget-gb", 11.0);
  const std::string filter = FlagValue(argc, argv, "datasets", "");
  if (!filter.empty()) {
    options.dataset_filter = Split(filter, ',');
  }
  options.profile_path = FlagValue(argc, argv, "profile", "");
  options.metrics_out = FlagValue(argc, argv, "metrics-out", "");
  options.metrics_text = FlagValue(argc, argv, "metrics-text", "");
  return options;
}

// Dumps the process metrics registry to the paths named by --metrics-out /
// --metrics-text (no-op when neither was given). Call once, at bench exit.
inline void WriteMetricsSnapshots(const BenchOptions& options) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
  if (!options.metrics_out.empty()) {
    if (registry.WriteJsonFile(options.metrics_out)) {
      std::printf("metrics: %s\n", options.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", options.metrics_out.c_str());
    }
  }
  if (!options.metrics_text.empty()) {
    if (registry.WriteTextFile(options.metrics_text)) {
      std::printf("metrics: %s\n", options.metrics_text.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", options.metrics_text.c_str());
    }
  }
}

// Owns the bench's Profiler when --profile= was given. sink() is null when
// profiling is off, so benches can unconditionally forward it into
// TrainConfig::profiler / RunContext and pay nothing by default.
class BenchProfile {
 public:
  explicit BenchProfile(const BenchOptions& options)
      : path_(options.profile_path), profiler_(!options.profile_path.empty()) {}

  Profiler* sink() { return path_.empty() ? nullptr : &profiler_; }

  // Writes the Chrome trace and prints the aggregate summary table. Call
  // once, after the last profiled run.
  void Finish() {
    if (path_.empty() || profiler_.events().empty()) {
      return;
    }
    if (profiler_.WriteChromeTrace(path_)) {
      std::printf("\nprofile: %zu spans -> %s (open in chrome://tracing)\n",
                  profiler_.events().size(), path_.c_str());
    } else {
      std::fprintf(stderr, "profile: failed to write %s\n", path_.c_str());
    }
    std::printf("%s", profiler_.SummaryTable().c_str());
  }

 private:
  std::string path_;
  Profiler profiler_;
};

inline bool DatasetSelected(const BenchOptions& options, const std::string& name) {
  if (options.dataset_filter.empty()) {
    return true;
  }
  for (const std::string& wanted : options.dataset_filter) {
    if (wanted == name) {
      return true;
    }
  }
  return false;
}

// Materializes `spec` at its default scale times the CLI multiplier.
inline Dataset LoadDataset(const DatasetSpec& spec, const BenchOptions& options) {
  DatasetOptions dataset_options;
  dataset_options.scale = spec.default_scale * options.scale_multiplier;
  dataset_options.max_feature_dim = options.max_feature_dim;
  dataset_options.add_self_loops = spec.num_relations == 1;
  return MakeDataset(spec, dataset_options);
}

inline TrainConfig MakeTrainConfig(const BenchOptions& options, double effective_scale) {
  TrainConfig config;
  config.epochs = options.epochs + options.warmup;
  config.warmup_epochs = options.warmup;
  config.memory_budget_bytes = static_cast<uint64_t>(
      options.memory_budget_gb * effective_scale * 1024.0 * 1024.0 * 1024.0);
  return config;
}

// Table cell: "12.3" or "OOM".
inline std::string TimeCell(const TrainResult& result) {
  if (result.oom) {
    return "OOM";
  }
  return FormatDouble(result.avg_epoch_ms, 1);
}

inline std::string MemoryCell(const TrainResult& result) {
  if (result.oom) {
    return "OOM";
  }
  return FormatDouble(static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0), 1);
}

inline void PrintHeaderRule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace bench
}  // namespace seastar

#endif  // BENCH_BENCH_UTIL_H_
