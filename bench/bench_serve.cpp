// Serving-path bench: latency percentiles and steady-state allocation
// behaviour of the inference Server under a paced request stream.
//
// Four scenarios per run:
//   clean         steady load, no faults, tracing off — measures the warm
//                 serving path. The steady window (everything after the warm
//                 phase) must show zero plan-cache misses and ~zero fresh
//                 mallocs: a warm request is plan-cached and pool-served end
//                 to end (ISSUE 3's invariant, now load-bearing for the
//                 micro-batcher's cost model).
//   traced        the clean scenario with per-request tracing at production
//                 defaults (1% head sampling + tail reservoir). The report
//                 carries tracing_overhead_pct = p50 delta vs clean, which
//                 CI bands at <= 5%; the steady window must stay at zero
//                 plan misses and zero fresh mallocs with tracing on.
//   faulty        clean's load with probabilistic allocation faults —
//                 measures what the retry/backoff layer costs when
//                 transient faults are real.
//   multi_tenant  three tenants through one server: two well-behaved tenants
//                 on model m0 and a rogue on its own m1 with a small
//                 admission quota and probabilistic allocation faults scoped
//                 to its batches. Measures QoS isolation: the report carries
//                 a per-tenant block (identity counters + latency
//                 percentiles) so CI can gate the victims' p99 and each
//                 tenant's exact accounting identity.
//
// Emits a machine-readable report (--out=, default BENCH_serve.json) with
// p50/p95/p99, shed/expired/degraded counts, retry totals, and the steady
// counters, so CI can track the serving path across PRs.
//
// Flags: --dataset=<name> (default cora)  --scale  --max-feat
//        --requests=<n> per scenario (default 4000)  --qps (default 4000)
//        --deadline-ms (default 50)  --warm=<n> warm-phase requests (default 400)
//        --flaky-p=<p> fault probability for the faulty scenario (default 0.02)
//        --out=<path>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/core/executor_factory.h"
#include "src/core/models/gcn.h"
#include "src/exec/plan_cache.h"
#include "src/serve/model_registry.h"
#include "src/serve/server.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace bench {
namespace {

struct TenantReport {
  std::string name;
  bool rogue = false;
  serve::TenantStats stats;
  serve::LatencySummary latency;
};

struct ScenarioReport {
  std::string name;
  int64_t requests = 0;
  double wall_s = 0.0;
  double qps_achieved = 0.0;
  serve::ServerStats stats;
  serve::LatencySummary latency;
  // Deltas over the steady window (after the warm phase completed).
  uint64_t steady_plan_misses = 0;
  uint64_t steady_fresh_mallocs = 0;
  uint64_t steady_alloc_requests = 0;
  // Multi-tenant scenario only: per-tenant identity + latency slices.
  std::vector<TenantReport> tenants;
};

// Drives `server` with `count` paced requests and blocks until all are
// answered. With `tenant_names`, requests rotate round-robin across the
// named tenants.
void Drive(serve::Server& server, const Dataset& data, int64_t count, double qps, double deadline_ms,
           Rng& rng, const std::vector<std::string>* tenant_names = nullptr) {
  std::vector<std::future<StatusOr<serve::InferenceResponse>>> futures;
  futures.reserve(static_cast<size_t>(count));
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / qps));
  const auto t0 = std::chrono::steady_clock::now();
  const int64_t num_vertices = data.graph.num_vertices();
  size_t drained = 0;
  for (int64_t i = 0; i < count; ++i) {
    std::this_thread::sleep_until(t0 + i * interval);
    serve::InferenceRequest request;
    request.vertices.push_back(
        static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
    request.deadline_ms = deadline_ms;
    if (tenant_names != nullptr && !tenant_names->empty()) {
      request.tenant = (*tenant_names)[static_cast<size_t>(i) % tenant_names->size()];
    }
    futures.push_back(server.Submit(std::move(request)));
    // Consume answered futures as we go: holding every response tensor
    // alive until the end would defeat pool reuse and misreport the steady
    // state the bench exists to measure.
    while (drained < futures.size() &&
           futures[drained].wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      futures[drained].get();
      ++drained;
    }
  }
  for (; drained < futures.size(); ++drained) {
    futures[drained].get();
  }
}

ScenarioReport RunScenario(const std::string& name, const Dataset& data, int64_t warm,
                           int64_t requests, double qps, double deadline_ms, double flaky_p,
                           uint64_t seed, bool tracing_enabled) {
  GcnConfig gcn;
  gcn.hidden_dim = 16;
  Gcn model(data, gcn, std::move(*ExecutorFactory::Create("seastar")));

  serve::ServeConfig config;
  config.queue_capacity = 128;
  config.default_deadline_ms = deadline_ms;
  config.tracing.enabled = tracing_enabled;  // Defaults otherwise: 1% head + tail.
  config.tracing.seed = seed;
  serve::Server server(model, data, config);
  Status started = server.Start();
  SEASTAR_CHECK(started.ok()) << started.ToString();

  Rng rng(seed);
  // Warm phase: plans compile, the pool sizes itself, percentiles stabilize.
  Drive(server, data, warm, qps, deadline_ms, rng);

  if (flaky_p > 0.0) {
    FaultInjector::Get().ArmProbabilistic(FaultSite::kTensorAlloc, flaky_p, seed);
  }
  TensorAllocator& allocator = TensorAllocator::Get();
  const uint64_t plan_misses_before = PlanCache::Get().misses();
  const uint64_t mallocs_before = allocator.fresh_mallocs();
  const uint64_t alloc_requests_before = allocator.total_allocations();
  const auto t0 = std::chrono::steady_clock::now();

  Drive(server, data, requests, qps, deadline_ms, rng);

  ScenarioReport report;
  report.name = name;
  report.requests = requests;
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.qps_achieved = static_cast<double>(requests) / report.wall_s;
  report.steady_plan_misses = PlanCache::Get().misses() - plan_misses_before;
  report.steady_fresh_mallocs = allocator.fresh_mallocs() - mallocs_before;
  report.steady_alloc_requests = allocator.total_allocations() - alloc_requests_before;
  FaultInjector::Get().DisarmAll();
  server.Shutdown();
  report.stats = server.stats();
  report.latency = server.latency_summary();
  return report;
}

// Three tenants through one server: tenant-a (weight 2) and tenant-c share
// model m0; tenant-b is the rogue on its own m1 with a tight admission quota
// and probabilistic allocation faults scoped to its batches. The interesting
// outputs are per tenant: the rogue's pressure must show up only in *its*
// slice (quota sheds, degraded answers, breaker trips) while the victims'
// identity stays all-served and their latency stays in the clean band.
ScenarioReport RunMultiTenantScenario(const Dataset& data, int64_t warm, int64_t requests,
                                      double qps, double deadline_ms, double flaky_p,
                                      uint64_t seed) {
  auto factory = [&data]() -> std::unique_ptr<GnnModel> {
    GcnConfig gcn;
    gcn.hidden_dim = 16;
    return std::make_unique<Gcn>(data, gcn, std::move(*ExecutorFactory::Create("seastar")));
  };
  auto registry = std::make_shared<serve::ModelRegistry>();
  SEASTAR_CHECK(registry->Register("m0", data, factory).has_value());
  SEASTAR_CHECK(registry->Register("m1", data, factory).has_value());

  serve::ServeConfig config;
  config.queue_capacity = 128;
  config.default_deadline_ms = deadline_ms;
  // The tenant fault spec is re-armed (and reseeded) around every rogue
  // batch, so the probabilistic stream restarts each time and only its first
  // few draws matter; a small p would never fire. Floor it high enough that
  // rogue batches pay retries every run.
  char fault_spec[64];
  std::snprintf(fault_spec, sizeof(fault_spec), "alloc:p=%.3f:seed=%llu",
                flaky_p < 0.2 ? 0.2 : flaky_p, static_cast<unsigned long long>(seed));
  const char* kTenantNames[] = {"tenant-a", "tenant-b", "tenant-c"};
  for (int i = 0; i < 3; ++i) {
    serve::TenantConfig tenant;
    tenant.name = kTenantNames[i];
    if (i == 1) {  // The rogue.
      tenant.model_id = "m1";
      tenant.max_queued = 8;
      tenant.fault_spec = fault_spec;
    } else {
      tenant.model_id = "m0";
      tenant.weight = (i == 0) ? 2.0 : 1.0;
    }
    config.tenants.push_back(std::move(tenant));
  }
  serve::Server server(registry, config);
  Status started = server.Start();
  SEASTAR_CHECK(started.ok()) << started.ToString();

  const std::vector<std::string> tenant_names(std::begin(kTenantNames), std::end(kTenantNames));
  Rng rng(seed);
  Drive(server, data, warm, qps, deadline_ms, rng, &tenant_names);

  TensorAllocator& allocator = TensorAllocator::Get();
  const uint64_t plan_misses_before = PlanCache::Get().misses();
  const uint64_t mallocs_before = allocator.fresh_mallocs();
  const uint64_t alloc_requests_before = allocator.total_allocations();
  const auto t0 = std::chrono::steady_clock::now();

  Drive(server, data, requests, qps, deadline_ms, rng, &tenant_names);

  ScenarioReport report;
  report.name = "multi_tenant";
  report.requests = requests;
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.qps_achieved = static_cast<double>(requests) / report.wall_s;
  report.steady_plan_misses = PlanCache::Get().misses() - plan_misses_before;
  report.steady_fresh_mallocs = allocator.fresh_mallocs() - mallocs_before;
  report.steady_alloc_requests = allocator.total_allocations() - alloc_requests_before;
  server.Shutdown();
  report.stats = server.stats();
  report.latency = server.latency_summary();
  for (const std::string& name : server.tenant_names()) {
    TenantReport tenant;
    tenant.name = name;
    tenant.rogue = (name == "tenant-b");
    tenant.stats = *server.tenant_stats(name);
    tenant.latency = *server.tenant_latency_summary(name);
    report.tenants.push_back(std::move(tenant));
  }
  return report;
}

void WriteReport(const std::string& path, const std::string& dataset,
                 const std::vector<ScenarioReport>& reports, double tracing_overhead_pct) {
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "serve");
  json.Field("dataset", dataset);
  // p50 delta of the traced scenario over the clean one, in percent. Gated
  // on the median, not p99: the tail is scheduler noise at bench scale, the
  // median is the per-request cost tracing actually adds.
  json.FieldDouble("tracing_overhead_pct", tracing_overhead_pct, 2);
  json.Key("scenarios");
  json.BeginArray();
  for (const ScenarioReport& r : reports) {
    json.BeginObject();
    json.Field("name", r.name);
    json.Field("requests", r.requests);
    json.FieldDouble("wall_s", r.wall_s, 3);
    json.FieldDouble("qps_achieved", r.qps_achieved, 0);
    json.FieldDouble("p50_ms", r.latency.p50_ms, 3);
    json.FieldDouble("p95_ms", r.latency.p95_ms, 3);
    json.FieldDouble("p99_ms", r.latency.p99_ms, 3);
    json.FieldDouble("max_ms", r.latency.max_ms, 3);
    json.Field("submitted", r.stats.submitted);
    json.Field("rejected", r.stats.rejected);
    json.Field("served", r.stats.served);
    json.Field("degraded", r.stats.degraded);
    json.Field("shed", r.stats.shed);
    json.Field("expired", r.stats.expired);
    json.Field("failed", r.stats.failed);
    json.Field("forward_passes", r.stats.batches);
    json.Field("retries", r.stats.retries);
    json.Field("breaker_trips", r.stats.breaker_trips);
    json.Field("steady_plan_misses", static_cast<uint64_t>(r.steady_plan_misses));
    json.Field("steady_fresh_mallocs", static_cast<uint64_t>(r.steady_fresh_mallocs));
    json.Field("steady_alloc_requests", static_cast<uint64_t>(r.steady_alloc_requests));
    json.Field("traces_started", r.stats.trace.started);
    json.Field("traces_retained", r.stats.trace.retained_anomaly + r.stats.trace.retained_sampled +
                                      r.stats.trace.retained_tail);
    json.Field("trace_spans_dropped", r.stats.trace.spans_dropped);
    if (!r.tenants.empty()) {
      json.Key("tenants");
      json.BeginArray();
      for (const TenantReport& t : r.tenants) {
        json.BeginObject();
        json.Field("name", t.name);
        json.Field("rogue", t.rogue);
        json.Field("submitted", t.stats.submitted);
        json.Field("served", t.stats.served);
        json.Field("degraded", t.stats.degraded);
        json.Field("shed", t.stats.shed);
        json.Field("quota_shed", t.stats.quota_shed);
        json.Field("expired", t.stats.expired);
        json.Field("failed", t.stats.failed);
        json.Field("retries", t.stats.retries);
        json.Field("breaker_trips", t.stats.breaker_trips);
        json.FieldDouble("p50_ms", t.latency.p50_ms, 3);
        json.FieldDouble("p99_ms", t.latency.p99_ms, 3);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (json.WriteToFile(path)) {
    std::printf("\nreport: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

int Main(int argc, char** argv) {
  const std::string dataset_name = FlagValue(argc, argv, "dataset", "cora");
  const double scale = FlagDouble(argc, argv, "scale", 0.25);
  const int64_t max_feat = FlagInt(argc, argv, "max-feat", 64);
  const int64_t requests = FlagInt(argc, argv, "requests", 4000);
  const int64_t warm = FlagInt(argc, argv, "warm", 400);
  const double qps = FlagDouble(argc, argv, "qps", 4000.0);
  const double deadline_ms = FlagDouble(argc, argv, "deadline-ms", 50.0);
  const double flaky_p = FlagDouble(argc, argv, "flaky-p", 0.02);
  const std::string out_path = FlagValue(argc, argv, "out", "BENCH_serve.json");
  const std::string metrics_out = FlagValue(argc, argv, "metrics-out", "");
  const std::string metrics_text = FlagValue(argc, argv, "metrics-text", "");

  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = max_feat;
  StatusOr<Dataset> made = TryMakeDatasetByName(dataset_name, options);
  if (!made.has_value()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Dataset data = *std::move(made);

  std::printf("serving bench: GCN on %s (N=%lld), %lld requests/scenario at %.0f qps\n\n",
              data.spec.name.c_str(), static_cast<long long>(data.graph.num_vertices()),
              static_cast<long long>(requests), qps);

  std::vector<ScenarioReport> reports;
  reports.push_back(RunScenario("clean", data, warm, requests, qps, deadline_ms, /*flaky_p=*/0.0,
                                17, /*tracing_enabled=*/false));
  // Same load, same seed, tracing at production defaults: the pair isolates
  // what always-on tracing costs the warm path.
  reports.push_back(RunScenario("traced", data, warm, requests, qps, deadline_ms, /*flaky_p=*/0.0,
                                17, /*tracing_enabled=*/true));
  reports.push_back(RunScenario("faulty", data, warm, requests, qps, deadline_ms, flaky_p, 23,
                                /*tracing_enabled=*/true));
  reports.push_back(
      RunMultiTenantScenario(data, warm, requests, qps, deadline_ms, flaky_p, 29));

  std::printf("%-12s %10s %10s %10s %10s %10s %10s %12s %12s\n", "scenario", "p50 ms", "p95 ms",
              "p99 ms", "served", "degraded", "retries", "plan misses", "mallocs");
  for (const ScenarioReport& r : reports) {
    std::printf("%-12s %10.3f %10.3f %10.3f %10lld %10lld %10lld %12llu %12llu\n", r.name.c_str(),
                r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
                static_cast<long long>(r.stats.served), static_cast<long long>(r.stats.degraded),
                static_cast<long long>(r.stats.retries),
                static_cast<unsigned long long>(r.steady_plan_misses),
                static_cast<unsigned long long>(r.steady_fresh_mallocs));
    for (const TenantReport& t : r.tenants) {
      std::printf("  %-10s %10.3f %10s %10.3f %10lld %10lld %10lld   shed %lld (quota %lld)%s\n",
                  t.name.c_str(), t.latency.p50_ms, "-", t.latency.p99_ms,
                  static_cast<long long>(t.stats.served), static_cast<long long>(t.stats.degraded),
                  static_cast<long long>(t.stats.retries), static_cast<long long>(t.stats.shed),
                  static_cast<long long>(t.stats.quota_shed), t.rogue ? "  [rogue]" : "");
    }
  }

  double tracing_overhead_pct = 0.0;
  if (reports.size() >= 2 && reports[0].latency.p50_ms > 0.0) {
    tracing_overhead_pct =
        (reports[1].latency.p50_ms - reports[0].latency.p50_ms) / reports[0].latency.p50_ms * 100.0;
  }
  std::printf("\ntracing overhead: %+.2f%% on p50 (clean %.3f ms -> traced %.3f ms)\n",
              tracing_overhead_pct, reports[0].latency.p50_ms, reports[1].latency.p50_ms);

  WriteReport(out_path, data.spec.name, reports, tracing_overhead_pct);
  if (!metrics_out.empty() &&
      !metrics::MetricsRegistry::Get().WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "metrics: failed to write %s\n", metrics_out.c_str());
  }
  if (!metrics_text.empty() &&
      !metrics::MetricsRegistry::Get().WriteTextFile(metrics_text)) {
    std::fprintf(stderr, "metrics: failed to write %s\n", metrics_text.c_str());
  }

  // The registry mirrors the per-server identity counters; a violated
  // identity in the exported metrics means the mirroring drifted.
  {
    metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Get();
    const int64_t submitted = registry.GetCounter("seastar_serve_submitted_total")->value();
    const int64_t outcomes = registry.GetCounter("seastar_serve_served_total")->value() +
                             registry.GetCounter("seastar_serve_degraded_total")->value() +
                             registry.GetCounter("seastar_serve_shed_total")->value() +
                             registry.GetCounter("seastar_serve_expired_total")->value() +
                             registry.GetCounter("seastar_serve_failed_total")->value();
    if (submitted != outcomes) {
      std::fprintf(stderr,
                   "ACCOUNTING VIOLATION: exported submitted=%lld != outcome sum %lld\n",
                   static_cast<long long>(submitted), static_cast<long long>(outcomes));
      return 2;
    }
  }

  // The per-tenant identity must hold exactly for every tenant of the
  // multi-tenant scenario — the rogue's sheds and degradations land in its
  // own slice, never smeared across the victims.
  for (const ScenarioReport& r : reports) {
    for (const TenantReport& t : r.tenants) {
      const int64_t accounted =
          t.stats.served + t.stats.degraded + t.stats.shed + t.stats.expired + t.stats.failed;
      if (accounted != t.stats.submitted) {
        std::fprintf(stderr,
                     "TENANT ACCOUNTING VIOLATION (%s/%s): submitted %lld != accounted %lld\n",
                     r.name.c_str(), t.name.c_str(), static_cast<long long>(t.stats.submitted),
                     static_cast<long long>(accounted));
        return 2;
      }
    }
  }

  if (reports[0].steady_plan_misses != 0) {
    std::fprintf(stderr,
                 "STEADY-STATE VIOLATION: clean scenario compiled %llu plans after warmup\n",
                 static_cast<unsigned long long>(reports[0].steady_plan_misses));
    return 2;
  }
  // Tracing must not disturb the warm path: the traced scenario is the same
  // load as clean and has to hit the same steady-state zeros — no plan
  // recompiles and no fresh tensor mallocs once warm.
  if (reports[1].steady_plan_misses != 0 || reports[1].steady_fresh_mallocs != 0) {
    std::fprintf(stderr,
                 "STEADY-STATE VIOLATION: traced scenario saw %llu plan misses, "
                 "%llu fresh mallocs after warmup (must be 0 with tracing on)\n",
                 static_cast<unsigned long long>(reports[1].steady_plan_misses),
                 static_cast<unsigned long long>(reports[1].steady_fresh_mallocs));
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Main(argc, argv); }
