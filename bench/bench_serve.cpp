// Serving-path bench: latency percentiles and steady-state allocation
// behaviour of the inference Server under a paced request stream.
//
// Two scenarios per run:
//   clean   steady load, no faults — measures the warm serving path. The
//           steady window (everything after the warm phase) must show zero
//           plan-cache misses and ~zero fresh mallocs: a warm request is
//           plan-cached and pool-served end to end (ISSUE 3's invariant,
//           now load-bearing for the micro-batcher's cost model).
//   faulty  same load with probabilistic allocation faults — measures what
//           the retry/backoff layer costs when transient faults are real.
//
// Emits a machine-readable report (--out=, default BENCH_serve.json) with
// p50/p95/p99, shed/expired/degraded counts, retry totals, and the steady
// counters, so CI can track the serving path across PRs.
//
// Flags: --dataset=<name> (default cora)  --scale  --max-feat
//        --requests=<n> per scenario (default 4000)  --qps (default 4000)
//        --deadline-ms (default 50)  --warm=<n> warm-phase requests (default 400)
//        --flaky-p=<p> fault probability for the faulty scenario (default 0.02)
//        --out=<path>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/core/models/gcn.h"
#include "src/exec/plan_cache.h"
#include "src/serve/server.h"
#include "src/tensor/allocator.h"

namespace seastar {
namespace bench {
namespace {

struct ScenarioReport {
  std::string name;
  int64_t requests = 0;
  double wall_s = 0.0;
  double qps_achieved = 0.0;
  serve::ServerStats stats;
  serve::LatencySummary latency;
  // Deltas over the steady window (after the warm phase completed).
  uint64_t steady_plan_misses = 0;
  uint64_t steady_fresh_mallocs = 0;
  uint64_t steady_alloc_requests = 0;
};

// Drives `server` with `count` paced requests and blocks until all are
// answered.
void Drive(serve::Server& server, const Dataset& data, int64_t count, double qps, double deadline_ms,
           Rng& rng) {
  std::vector<std::future<StatusOr<serve::InferenceResponse>>> futures;
  futures.reserve(static_cast<size_t>(count));
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / qps));
  const auto t0 = std::chrono::steady_clock::now();
  const int64_t num_vertices = data.graph.num_vertices();
  size_t drained = 0;
  for (int64_t i = 0; i < count; ++i) {
    std::this_thread::sleep_until(t0 + i * interval);
    serve::InferenceRequest request;
    request.vertices.push_back(
        static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(num_vertices))));
    request.deadline_ms = deadline_ms;
    futures.push_back(server.Submit(std::move(request)));
    // Consume answered futures as we go: holding every response tensor
    // alive until the end would defeat pool reuse and misreport the steady
    // state the bench exists to measure.
    while (drained < futures.size() &&
           futures[drained].wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      futures[drained].get();
      ++drained;
    }
  }
  for (; drained < futures.size(); ++drained) {
    futures[drained].get();
  }
}

ScenarioReport RunScenario(const std::string& name, const Dataset& data, int64_t warm,
                           int64_t requests, double qps, double deadline_ms, double flaky_p,
                           uint64_t seed) {
  BackendConfig backend;
  backend.backend = Backend::kSeastar;
  GcnConfig gcn;
  gcn.hidden_dim = 16;
  Gcn model(data, gcn, backend);

  serve::ServeConfig config;
  config.queue_capacity = 128;
  config.default_deadline_ms = deadline_ms;
  serve::Server server(model, data, config);
  Status started = server.Start();
  SEASTAR_CHECK(started.ok()) << started.ToString();

  Rng rng(seed);
  // Warm phase: plans compile, the pool sizes itself, percentiles stabilize.
  Drive(server, data, warm, qps, deadline_ms, rng);

  if (flaky_p > 0.0) {
    FaultInjector::Get().ArmProbabilistic(FaultSite::kTensorAlloc, flaky_p, seed);
  }
  TensorAllocator& allocator = TensorAllocator::Get();
  const uint64_t plan_misses_before = PlanCache::Get().misses();
  const uint64_t mallocs_before = allocator.fresh_mallocs();
  const uint64_t alloc_requests_before = allocator.total_allocations();
  const auto t0 = std::chrono::steady_clock::now();

  Drive(server, data, requests, qps, deadline_ms, rng);

  ScenarioReport report;
  report.name = name;
  report.requests = requests;
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.qps_achieved = static_cast<double>(requests) / report.wall_s;
  report.steady_plan_misses = PlanCache::Get().misses() - plan_misses_before;
  report.steady_fresh_mallocs = allocator.fresh_mallocs() - mallocs_before;
  report.steady_alloc_requests = allocator.total_allocations() - alloc_requests_before;
  FaultInjector::Get().DisarmAll();
  server.Shutdown();
  report.stats = server.stats();
  report.latency = server.latency_summary();
  return report;
}

void WriteJson(const std::string& path, const std::string& dataset,
               const std::vector<ScenarioReport>& reports) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"bench\": \"serve\",\n  \"dataset\": \"%s\",\n", dataset.c_str());
  std::fprintf(file, "  \"scenarios\": [");
  for (size_t s = 0; s < reports.size(); ++s) {
    const ScenarioReport& r = reports[s];
    std::fprintf(file, "%s\n    {\"name\": \"%s\", \"requests\": %lld, \"wall_s\": %.3f,"
                 " \"qps_achieved\": %.0f,\n",
                 s > 0 ? "," : "", r.name.c_str(), static_cast<long long>(r.requests), r.wall_s,
                 r.qps_achieved);
    std::fprintf(file,
                 "     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f,\n",
                 r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms, r.latency.max_ms);
    std::fprintf(file,
                 "     \"served\": %lld, \"degraded\": %lld, \"shed\": %lld, \"expired\": %lld,"
                 " \"failed\": %lld,\n",
                 static_cast<long long>(r.stats.served), static_cast<long long>(r.stats.degraded),
                 static_cast<long long>(r.stats.shed), static_cast<long long>(r.stats.expired),
                 static_cast<long long>(r.stats.failed));
    std::fprintf(file,
                 "     \"forward_passes\": %lld, \"retries\": %lld, \"breaker_trips\": %lld,\n",
                 static_cast<long long>(r.stats.batches), static_cast<long long>(r.stats.retries),
                 static_cast<long long>(r.stats.breaker_trips));
    std::fprintf(file,
                 "     \"steady_plan_misses\": %llu, \"steady_fresh_mallocs\": %llu,"
                 " \"steady_alloc_requests\": %llu}",
                 static_cast<unsigned long long>(r.steady_plan_misses),
                 static_cast<unsigned long long>(r.steady_fresh_mallocs),
                 static_cast<unsigned long long>(r.steady_alloc_requests));
  }
  std::fprintf(file, "\n  ]\n}\n");
  std::fclose(file);
  std::printf("\nreport: %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  const std::string dataset_name = FlagValue(argc, argv, "dataset", "cora");
  const double scale = FlagDouble(argc, argv, "scale", 0.25);
  const int64_t max_feat = FlagInt(argc, argv, "max-feat", 64);
  const int64_t requests = FlagInt(argc, argv, "requests", 4000);
  const int64_t warm = FlagInt(argc, argv, "warm", 400);
  const double qps = FlagDouble(argc, argv, "qps", 4000.0);
  const double deadline_ms = FlagDouble(argc, argv, "deadline-ms", 50.0);
  const double flaky_p = FlagDouble(argc, argv, "flaky-p", 0.02);
  const std::string out_path = FlagValue(argc, argv, "out", "BENCH_serve.json");

  DatasetOptions options;
  options.scale = scale;
  options.max_feature_dim = max_feat;
  StatusOr<Dataset> made = TryMakeDatasetByName(dataset_name, options);
  if (!made.has_value()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Dataset data = *std::move(made);

  std::printf("serving bench: GCN on %s (N=%lld), %lld requests/scenario at %.0f qps\n\n",
              data.spec.name.c_str(), static_cast<long long>(data.graph.num_vertices()),
              static_cast<long long>(requests), qps);

  std::vector<ScenarioReport> reports;
  reports.push_back(
      RunScenario("clean", data, warm, requests, qps, deadline_ms, /*flaky_p=*/0.0, 17));
  reports.push_back(
      RunScenario("faulty", data, warm, requests, qps, deadline_ms, flaky_p, 23));

  std::printf("%-8s %10s %10s %10s %10s %10s %10s %12s %12s\n", "scenario", "p50 ms", "p95 ms",
              "p99 ms", "served", "degraded", "retries", "plan misses", "mallocs");
  for (const ScenarioReport& r : reports) {
    std::printf("%-8s %10.3f %10.3f %10.3f %10lld %10lld %10lld %12llu %12llu\n", r.name.c_str(),
                r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
                static_cast<long long>(r.stats.served), static_cast<long long>(r.stats.degraded),
                static_cast<long long>(r.stats.retries),
                static_cast<unsigned long long>(r.steady_plan_misses),
                static_cast<unsigned long long>(r.steady_fresh_mallocs));
  }

  WriteJson(out_path, data.spec.name, reports);

  if (reports[0].steady_plan_misses != 0) {
    std::fprintf(stderr,
                 "STEADY-STATE VIOLATION: clean scenario compiled %llu plans after warmup\n",
                 static_cast<unsigned long long>(reports[0].steady_plan_misses));
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seastar

int main(int argc, char** argv) { return seastar::bench::Main(argc, argv); }
